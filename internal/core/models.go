package core

import (
	"sync"

	"spectra/internal/obs"
	"spectra/internal/predict"
)

// Resource names used in demand models and usage logs.
const (
	resCPULocal  = "cpu.local"
	resCPURemote = "cpu.remote"
	resNetBytes  = "net.bytes"
	resNetRPCs   = "net.rpcs"
	resEnergy    = "energy"
	resFiles     = "files"
)

// Energy-model feature names: the phase durations measured energy is
// regressed on.
const (
	featLocalSeconds = "localSeconds"
	featNetSeconds   = "netSeconds"
	featIdleSeconds  = "idleSeconds"
)

// accessThreshold is the minimum predicted likelihood at which a file is
// considered "may be accessed" for consistency enforcement.
const accessThreshold = 1e-3

// CustomPredictors lets an application replace the default numeric demand
// predictors with its own implementations (paper §3.4: "Spectra also
// provides an interface through which application-specific predictors may
// be specified"). Nil fields keep the default predictor for that resource.
type CustomPredictors struct {
	// CPULocal predicts client megacycles per execution.
	CPULocal predict.Numeric
	// CPURemote predicts server megacycles per execution.
	CPURemote predict.Numeric
	// NetBytes predicts client-server bytes moved per execution.
	NetBytes predict.Numeric
	// NetRPCs predicts the number of RPC exchanges per execution.
	NetRPCs predict.Numeric
}

// ModelOptions tunes the self-tuning demand models; the zero value selects
// the paper's defaults. The Disable* switches exist for the ablation
// benchmarks.
type ModelOptions struct {
	// Decay overrides the recency decay (0 selects predict.DefaultDecay,
	// 1 disables recency weighting).
	Decay float64
	// DisableParams drops input-parameter regression.
	DisableParams bool
	// DisableDataModels drops per-data-object models.
	DisableDataModels bool
	// DisableFilePrediction makes the file predictor claim every known
	// file may be accessed (likelihood 1), removing selective
	// reintegration and cache-miss estimation.
	DisableFilePrediction bool
	// Metrics, when non-nil, receives model-selection hit counters from
	// the default numeric predictors. NewClient fills it from Config.Obs.
	Metrics *obs.Registry
}

// opModels bundles every demand model for one operation: the four numeric
// resources, the energy phase model, and the file access predictors
// (generic plus per-data-object).
type opModels struct {
	mu sync.Mutex

	opts ModelOptions

	cpuLocal  predict.Numeric
	cpuRemote predict.Numeric
	netBytes  predict.Numeric
	netRPCs   predict.Numeric
	energy    *predict.LinearModel

	files       *fileModel
	filesByData map[string]*fileModel
}

// fileModel is the file-access predictor for one operation: like the
// numeric predictor it is binned by the discrete variables (plan and
// fidelity), with a generic fallback for combinations not yet seen. Binning
// matters: the full-vocabulary language model is accessed only by
// full-fidelity recognitions, so a flushed copy must not penalize
// reduced-fidelity alternatives (paper §4.1's file-cache scenario).
type fileModel struct {
	mu sync.Mutex

	decay   float64
	generic *predict.FilePredictor
	byKey   map[string]*predict.FilePredictor
}

func newFileModel(decay float64) *fileModel {
	return &fileModel{
		decay:   decay,
		generic: predict.NewFilePredictorDecay(decay),
		byKey:   make(map[string]*predict.FilePredictor),
	}
}

// observe updates the bin for the execution's discrete key and the generic
// model.
func (f *fileModel) observe(key string, files []predict.FileAccess) {
	f.mu.Lock()
	bin, ok := f.byKey[key]
	if !ok {
		bin = predict.NewFilePredictorDecay(f.decay)
		f.byKey[key] = bin
	}
	f.mu.Unlock()
	bin.ObserveOp(files)
	f.generic.ObserveOp(files)
}

// candidates returns likely-accessed files for the discrete key, falling
// back to the generic model for keys never executed.
func (f *fileModel) candidates(key string, threshold float64) []predict.FileLikelihood {
	f.mu.Lock()
	bin := f.byKey[key]
	f.mu.Unlock()
	if bin != nil {
		return bin.Candidates(threshold)
	}
	return f.generic.Candidates(threshold)
}

func newOpModels(params []string, opts ModelOptions, custom *CustomPredictors) *opModels {
	numeric := func(override predict.Numeric) predict.Numeric {
		if override != nil {
			return override
		}
		size := 0 // default
		if opts.DisableDataModels {
			size = -1
		}
		return predict.NewDefaultNumeric(predict.Options{
			Features:      params,
			Decay:         opts.Decay,
			DataCacheSize: size,
			DisableParams: opts.DisableParams,
			Metrics:       opts.Metrics,
		})
	}
	if custom == nil {
		custom = &CustomPredictors{}
	}
	decay := opts.Decay
	if decay == 0 {
		decay = predict.DefaultDecay
	}
	return &opModels{
		opts:      opts,
		cpuLocal:  numeric(custom.CPULocal),
		cpuRemote: numeric(custom.CPURemote),
		netBytes:  numeric(custom.NetBytes),
		netRPCs:   numeric(custom.NetRPCs),
		energy: predict.NewLinearModelDecay(
			[]string{featLocalSeconds, featNetSeconds, featIdleSeconds}, decay),
		files:       newFileModel(decay),
		filesByData: make(map[string]*fileModel),
	}
}

// observe folds one completed execution into every model and returns the
// records to persist. energyValid gates the energy observation.
func (m *opModels) observe(rec predict.Record, phases phaseUsage, usage observedUsage) []predict.Record {
	var out []predict.Record

	numeric := func(name string, model predict.Numeric, value float64) {
		model.Observe(predict.Observation{
			Params:   rec.Params,
			Discrete: rec.Discrete,
			Data:     rec.Data,
			Value:    value,
		})
		r := rec
		r.Resource = name
		r.Value = value
		r.Files = nil
		out = append(out, r)
	}
	numeric(resCPULocal, m.cpuLocal, usage.localMegacycles)
	numeric(resCPURemote, m.cpuRemote, usage.remoteMegacycles)
	numeric(resNetBytes, m.netBytes, usage.netBytes)
	numeric(resNetRPCs, m.netRPCs, usage.rpcs)

	if usage.energyValid {
		feats := phases.features()
		m.energy.Observe(feats, usage.energyJoules)
		r := rec
		r.Resource = resEnergy
		r.Params = feats
		r.Value = usage.energyJoules
		r.Files = nil
		out = append(out, r)
	}

	m.observeFiles(predict.DiscreteKey(rec.Discrete), rec.Data, usage.files)
	r := rec
	r.Resource = resFiles
	r.Value = 0
	r.Files = usage.files
	out = append(out, r)

	return out
}

func (m *opModels) observeFiles(key, data string, files []predict.FileAccess) {
	m.files.observe(key, files)
	if data == "" || m.opts.DisableDataModels {
		return
	}
	m.mu.Lock()
	fm, ok := m.filesByData[data]
	if !ok {
		fm = newFileModel(m.opts.Decay)
		m.filesByData[data] = fm
	}
	m.mu.Unlock()
	fm.observe(key, files)
}

// replay rebuilds model state from a persisted record.
func (m *opModels) replay(rec predict.Record) {
	obs := predict.Observation{
		Params:   rec.Params,
		Discrete: rec.Discrete,
		Data:     rec.Data,
		Value:    rec.Value,
	}
	switch rec.Resource {
	case resCPULocal:
		m.cpuLocal.Observe(obs)
	case resCPURemote:
		m.cpuRemote.Observe(obs)
	case resNetBytes:
		m.netBytes.Observe(obs)
	case resNetRPCs:
		m.netRPCs.Observe(obs)
	case resEnergy:
		m.energy.Observe(rec.Params, rec.Value)
	case resFiles:
		m.observeFiles(predict.DiscreteKey(rec.Discrete), rec.Data, rec.Files)
	}
}

// filePredictor selects the data-specific file model when one exists,
// otherwise the generic model.
func (m *opModels) filePredictor(data string) *fileModel {
	if data != "" && !m.opts.DisableDataModels {
		m.mu.Lock()
		fm, ok := m.filesByData[data]
		m.mu.Unlock()
		if ok {
			return fm
		}
	}
	return m.files
}

// fileCandidates lists files an execution with the given discrete key may
// access (likelihood above threshold). With file prediction disabled,
// every known file is a candidate at likelihood 1.
func (m *opModels) fileCandidates(key, data string) []predict.FileLikelihood {
	if m.opts.DisableFilePrediction {
		// Ablation: no selective prediction at all — every file the
		// operation has ever touched, in any bin or data context, counts
		// as certain to be accessed.
		cands := m.files.generic.Candidates(accessThreshold)
		for i := range cands {
			cands[i].Likelihood = 1
		}
		return cands
	}
	return m.filePredictor(data).candidates(key, accessThreshold)
}

// observedUsage is the per-execution measurement fed to observe.
type observedUsage struct {
	localMegacycles  float64
	remoteMegacycles float64
	netBytes         float64
	rpcs             float64
	energyJoules     float64
	energyValid      bool
	files            []predict.FileAccess
}

// phaseUsage tracks how the operation's wall-clock time divided into
// client-compute, network, and idle-wait phases; measured energy is
// regressed on these durations so energy predictions track both platform
// power characteristics and changing conditions.
type phaseUsage struct {
	localSeconds float64
	netSeconds   float64
	idleSeconds  float64
}

func (p phaseUsage) features() map[string]float64 {
	return map[string]float64{
		featLocalSeconds: p.localSeconds,
		featNetSeconds:   p.netSeconds,
		featIdleSeconds:  p.idleSeconds,
	}
}
