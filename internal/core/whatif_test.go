package core

import (
	"testing"

	"spectra/internal/solver"
)

func TestEvaluateAlternativesRanksAndMatchesDecision(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	for i := 0; i < 3; i++ {
		runToy(t, setup, op, solver.Alternative{Plan: "local"})
		runToy(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	}

	scored := setup.Client.EvaluateAlternatives(op, nil, "")
	if len(scored) != 2 {
		t.Fatalf("scored = %d, want 2", len(scored))
	}
	// Descending utility.
	if scored[0].Utility < scored[1].Utility {
		t.Fatalf("not sorted: %v then %v", scored[0].Utility, scored[1].Utility)
	}
	// The top-ranked alternative matches Spectra's actual decision.
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Key() != scored[0].Alternative.Key() {
		t.Fatalf("decision %s != top-ranked %s",
			octx.Decision().Alternative.Key(), scored[0].Alternative.Key())
	}
	octx.Abort()
	// Predictions are populated for feasible alternatives.
	for _, s := range scored {
		if !s.Predicted.Feasible || s.Predicted.Latency <= 0 {
			t.Fatalf("prediction missing: %+v", s)
		}
	}
}

func TestEvaluateAlternativesUnderPartition(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	runToy(t, setup, op, solver.Alternative{Plan: "local"})

	_, link, _ := setup.Env.Server("big")
	link.SetPartitioned(true)
	setup.Client.PollServers()

	scored := setup.Client.EvaluateAlternatives(op, nil, "")
	for _, s := range scored {
		if s.Alternative.Plan == "remote" {
			if s.Predicted.Feasible || s.Utility != 0 {
				t.Fatalf("partitioned remote alternative scored %+v", s)
			}
		}
	}
}
