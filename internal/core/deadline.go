package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"

	spectrarpc "spectra/internal/rpc"
)

// DeadlineOptions derives an end-to-end latency budget for every remote
// operation from the solver's own prediction: the predicted latency times
// Multiplier, clamped to [Floor, Ceiling]. The budget bounds the pool
// checkout wait, the dial, the exchange, and the failover ladder, and is
// propagated on the wire so servers shed work the client has abandoned.
// Inside the budget a hedged backup request may be launched against the
// next-best server once the primary outlives the hedge delay.
type DeadlineOptions struct {
	// Multiplier scales the predicted latency into a budget; 0 selects 3.
	Multiplier float64
	// Floor is the minimum budget, protecting very fast predictions from
	// impossible deadlines; 0 selects 100ms.
	Floor time.Duration
	// Ceiling is the maximum budget; 0 selects 30s.
	Ceiling time.Duration
	// HedgeDelay is how long the primary may run before a hedged backup is
	// launched; 0 derives it from the observed p95 remote latency (falling
	// back to a quarter of the budget while the sample is still small).
	HedgeDelay time.Duration
	// NoHedge disables hedged backups while keeping budgets and
	// cancellation.
	NoHedge bool
	// Disabled turns deadline propagation off entirely, restoring the
	// unbounded behavior.
	Disabled bool
}

func (o DeadlineOptions) multiplier() float64 {
	if o.Multiplier <= 0 {
		return 3
	}
	return o.Multiplier
}

func (o DeadlineOptions) floor() time.Duration {
	if o.Floor <= 0 {
		return 100 * time.Millisecond
	}
	return o.Floor
}

func (o DeadlineOptions) ceiling() time.Duration {
	if o.Ceiling <= 0 {
		return 30 * time.Second
	}
	return o.Ceiling
}

// budgetFor turns a predicted latency (seconds) into a clamped budget.
func (o DeadlineOptions) budgetFor(predictedSeconds float64) time.Duration {
	b := time.Duration(predictedSeconds * o.multiplier() * float64(time.Second))
	if f := o.floor(); b < f {
		b = f
	}
	if c := o.ceiling(); b > c {
		b = c
	}
	return b
}

// budgetContext is the sanctioned budget root: the single place on the
// request path where a latency budget becomes a context. A non-positive
// budget yields an unbounded context, for callers whose runtime has no
// deadline machinery. Every other request-path function threads its
// caller's ctx — minting a fresh context mid-path detaches everything
// downstream from the operation budget, which the ctxflow analyzer
// rejects; keeping the root in one named helper is what makes that rule
// enforceable.
func budgetContext(budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), budget)
}

// hedgeDelay picks how long to let the primary run before hedging: the
// configured delay, else the observed p95 remote latency (a reply slower
// than p95 is statistically already in the tail), else a quarter of the
// budget. Never longer than the budget itself.
func (o DeadlineOptions) hedgeDelay(ring *latencyRing, budget time.Duration) time.Duration {
	d := o.HedgeDelay
	if d <= 0 {
		if p95, ok := ring.p95(); ok {
			d = p95
		} else {
			d = budget / 4
		}
	}
	if d > budget {
		d = budget
	}
	return d
}

// DeadlineRuntime is the capability interface for runtimes whose remote
// calls can be bounded and cancelled. NetRuntime implements it; the
// simulation runtime deliberately does not (virtual time makes wall-clock
// budgets meaningless there), so deadline enforcement degrades to the
// plain path under simulation.
type DeadlineRuntime interface {
	RemoteCallContext(ctx context.Context, server, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, callReport, error)
}

var _ DeadlineRuntime = (*NetRuntime)(nil)

// latencyRingSize bounds the rolling remote-latency sample. 64 successful
// calls give a usable p95 while forgetting stale network conditions fast.
const latencyRingSize = 64

// latencyRingMinSamples is how many observations p95 needs before it
// trusts the sample.
const latencyRingMinSamples = 8

// latencyRing is a concurrency-safe rolling window of successful remote
// call latencies, feeding the adaptive hedge delay.
type latencyRing struct {
	mu   sync.Mutex
	buf  [latencyRingSize]time.Duration
	n    int // total observations (saturates at len(buf))
	next int // write cursor
}

func (r *latencyRing) record(d time.Duration) {
	if r == nil || d < 0 {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// p95 returns the 95th-percentile latency of the window, or ok=false while
// the sample is too small to trust.
func (r *latencyRing) p95() (time.Duration, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	n := r.n
	tmp := make([]time.Duration, n)
	copy(tmp, r.buf[:n])
	r.mu.Unlock()
	if n < latencyRingMinSamples {
		return 0, false
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := (n*95 + 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx], true
}

// errHedgeWon is the recorded cause when a hedged backup's reply beat the
// primary: a failover event in the report, though nothing actually failed.
var errHedgeWon = errors.New("core: hedged backup answered first")

// remoteResult is one completed remote attempt inside doRemoteDeadline.
// Reports are shipped back over a channel and accounted serially by the
// coordinating goroutine, because OpContext.account is not goroutine-safe.
type remoteResult struct {
	server string
	out    []byte
	rep    callReport
	err    error
	hedged bool
}

// doRemoteDeadline is DoRemoteOp under a latency budget: the whole
// operation — primary attempt, optional hedged backup, failover ladder —
// runs inside a context whose deadline is derived from the solver's
// predicted latency. The primary call is launched in a goroutine; if it
// outlives the hedge delay, a backup is sent to the next-best server and
// whichever reply arrives first wins, the loser being cancelled
// mid-exchange. Only when every in-budget placement fails does the local
// fallback run (outside the budget: a local result late still beats no
// result).
func (x *OpContext) doRemoteDeadline(dr DeadlineRuntime, optype string, payload []byte) ([]byte, error) {
	c := x.client
	primary := x.decision.Alternative.Server
	budget := c.deadline.budgetFor(x.decision.Predicted.Latency.Seconds())
	c.hooks.budgetSeconds.Observe(budget.Seconds())
	ctx, cancel := budgetContext(budget)
	defer cancel()

	results := make(chan remoteResult, 2)
	launch := func(server string, hedged bool) {
		spanName := obs.SpanRPC
		if hedged {
			spanName = obs.SpanHedge
		}
		sp := x.spans.Start(spanName, -1)
		var tc *wire.TraceContext
		if sp >= 0 {
			tc = &wire.TraceContext{TraceID: x.id, SpanID: uint64(sp)}
		}
		go func() {
			start := time.Now()
			out, rep, err := dr.RemoteCallContext(ctx, server, x.op.spec.Service, optype, payload, tc)
			if sp >= 0 {
				x.spans.Attach(sp, rep.serverSpans)
				x.spans.EndSpan(sp)
			}
			if err == nil {
				c.latring.record(time.Since(start))
			}
			results <- remoteResult{server: server, out: out, rep: rep, err: err, hedged: hedged}
		}()
	}

	launch(primary, false)
	inFlight := 1

	var hedgeC <-chan time.Time
	if !c.deadline.NoHedge {
		timer := time.NewTimer(c.deadline.hedgeDelay(&c.latring, budget))
		defer timer.Stop()
		hedgeC = timer.C
	}

	var winner *remoteResult
	var primaryErr error
	hedgeServer := ""
	for winner == nil && inFlight > 0 {
		select {
		case res := <-results:
			inFlight--
			x.account(res.rep)
			if res.err == nil {
				r := res
				winner = &r
				break
			}
			if isTransientExec(res.err) {
				c.noteRemoteFailure(res.server, res.err)
			}
			if !res.hedged || primaryErr == nil {
				primaryErr = res.err
			}
		case <-hedgeC:
			hedgeC = nil
			backup := c.nextServer(x.op, x.decision.Alternative, x.params, x.data, map[string]bool{primary: true})
			if backup == "" {
				continue
			}
			hedgeServer = backup
			c.hooks.hedgeLaunched.Inc()
			launch(backup, true)
			inFlight++
		}
	}

	if winner != nil {
		// Cancel the loser and drain it before touching non-goroutine-safe
		// state any further: close-on-cancel makes the abandoned exchange
		// return promptly, and its usage still has to be accounted.
		cancel()
		for inFlight > 0 {
			res := <-results
			inFlight--
			x.account(res.rep)
		}
		c.health.RecordSuccess(winner.server)
		if winner.hedged {
			c.hooks.hedgeWins.Inc()
			x.recordFailover(optype, primary, winner.server, errHedgeWon)
			x.decision.Alternative.Server = winner.server
		}
		return winner.out, nil
	}

	// The connection's I/O deadline (derived from the same budget) can fire
	// a hair before the context's own timer, so a deadline-classified
	// failure counts as an expiry even while ctx.Err() is still nil.
	if ctx.Err() != nil || spectrarpc.IsDeadline(primaryErr) {
		c.hooks.deadlineExceeded.Inc()
	}
	if c.failover.disabled() || !isTransientExec(primaryErr) {
		return nil, fmt.Errorf("core: do_remote_op %q on %q: %w", optype, primary, primaryErr)
	}
	tried := map[string]bool{primary: true}
	if hedgeServer != "" {
		tried[hedgeServer] = true
	}
	out, ranOn, degraded, err := x.failRemote(ctx, optype, payload, primary, primaryErr, tried)
	if err != nil {
		return nil, err
	}
	if degraded {
		x.degraded = true
	} else {
		x.decision.Alternative.Server = ranOn
	}
	return out, nil
}
