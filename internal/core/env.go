// Package core implements Spectra itself: the client that registers
// application operations, snapshots resource availability through the
// monitor framework, predicts per-alternative cost with the self-tuning
// demand models, selects the best execution alternative with the heuristic
// solver, enforces Coda data consistency for remote execution, and measures
// the resources every operation consumes to refine its models.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"spectra/internal/coda"
	"spectra/internal/predict"
	"spectra/internal/sim"
	"spectra/internal/simnet"
)

// ServiceFunc is an application code component hosted by a Spectra server
// (a "service"). It receives the operation type and request payload and
// consumes resources through the ServiceContext.
type ServiceFunc func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error)

// Node is one machine in the environment: its hardware model, its Coda
// cache manager, its link to the file servers, and the services it hosts.
type Node struct {
	mu sync.Mutex

	machine  *sim.Machine
	fs       *coda.Client
	fsLink   *simnet.Link
	services map[string]ServiceFunc
}

// NewNode assembles a node.
func NewNode(machine *sim.Machine, fs *coda.Client, fsLink *simnet.Link) *Node {
	return &Node{
		machine:  machine,
		fs:       fs,
		fsLink:   fsLink,
		services: make(map[string]ServiceFunc),
	}
}

// Machine returns the node's hardware model.
func (n *Node) Machine() *sim.Machine { return n.machine }

// Coda returns the node's cache manager.
func (n *Node) Coda() *coda.Client { return n.fs }

// FSLink returns the node's link to the file servers.
func (n *Node) FSLink() *simnet.Link { return n.fsLink }

// RegisterService installs a service on the node. Each service would run
// as a separate process on a real server; here it is a handler invoked with
// a per-request context.
func (n *Node) RegisterService(name string, fn ServiceFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.services[name] = fn
}

// Service looks up a hosted service.
func (n *Node) Service(name string) (ServiceFunc, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn, ok := n.services[name]
	return fn, ok
}

// ServiceNames lists hosted services.
func (n *Node) ServiceNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.services))
	for name := range n.services {
		out = append(out, name)
	}
	return out
}

// FetchRateBps estimates how fast this node fetches uncached file data.
func (n *Node) FetchRateBps() float64 {
	if n.fsLink == nil {
		return 0
	}
	return n.fsLink.EffectiveBandwidthBps()
}

// EnergyAccount attributes client energy consumption to operations. It
// keeps counting even on wall power (like the paper's external multimeter),
// so demand models learn while plugged in; the battery itself only drains
// when the machine is battery powered.
type EnergyAccount struct {
	mu sync.Mutex

	machine    *sim.Machine
	attributed float64
}

// NewEnergyAccount returns an account over the client machine.
func NewEnergyAccount(machine *sim.Machine) *EnergyAccount {
	return &EnergyAccount{machine: machine}
}

// AttributedJoules implements monitor.EnergyAccount.
func (a *EnergyAccount) AttributedJoules() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.attributed
}

// DrainCompute charges t of computation.
func (a *EnergyAccount) DrainCompute(t time.Duration) {
	a.add(a.machine.DrainCompute(t), t, a.machine.Power().BusyW)
}

// DrainIdle charges t of idle waiting.
func (a *EnergyAccount) DrainIdle(t time.Duration) {
	a.add(a.machine.DrainIdle(t), t, a.machine.Power().IdleW)
}

// DrainNetwork charges t of network activity.
func (a *EnergyAccount) DrainNetwork(t time.Duration) {
	a.add(a.machine.DrainNetwork(t), t, a.machine.Power().NetW)
}

func (a *EnergyAccount) add(joules float64, t time.Duration, watts float64) {
	if joules <= 0 {
		// Wall-powered machines report their hypothetical draw; fall back
		// to computing it so attribution continues while plugged in.
		joules = watts * sim.Seconds(t)
		if joules <= 0 {
			return
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.attributed += joules
}

// Env is the simulated testbed: a virtual clock, the client (host) node,
// candidate Spectra servers with their links from the client, and the Coda
// file servers.
type Env struct {
	mu sync.Mutex

	clock       *sim.VirtualClock
	fileServer  *coda.FileServer
	host        *Node
	hostAccount *EnergyAccount
	servers     map[string]*Node
	links       map[string]*simnet.Link
}

// NewEnv creates an environment around the given host node.
func NewEnv(clock *sim.VirtualClock, fileServer *coda.FileServer, host *Node) *Env {
	return &Env{
		clock:       clock,
		fileServer:  fileServer,
		host:        host,
		hostAccount: NewEnergyAccount(host.Machine()),
		servers:     make(map[string]*Node),
		links:       make(map[string]*simnet.Link),
	}
}

// Clock returns the environment clock.
func (e *Env) Clock() *sim.VirtualClock { return e.clock }

// FileServer returns the Coda file server.
func (e *Env) FileServer() *coda.FileServer { return e.fileServer }

// Host returns the client node.
func (e *Env) Host() *Node { return e.host }

// HostAccount returns the client energy account.
func (e *Env) HostAccount() *EnergyAccount { return e.hostAccount }

// AddServer registers a candidate Spectra server reachable over link.
func (e *Env) AddServer(name string, node *Node, link *simnet.Link) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.servers[name] = node
	e.links[name] = link
}

// Server returns a server node and its link.
func (e *Env) Server(name string) (*Node, *simnet.Link, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.servers[name]
	if !ok {
		return nil, nil, false
	}
	return n, e.links[name], true
}

// ServerNames lists registered servers in deterministic order.
func (e *Env) ServerNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.servers))
	for name := range e.servers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ServiceContext is the execution context handed to services. It meters
// everything the service does so Spectra can observe operation resource
// usage precisely.
type ServiceContext struct {
	clock sim.Clock
	node  *Node
	// account is non-nil only when the service runs on the client, whose
	// energy Spectra meters.
	account *EnergyAccount
	// remote marks contexts executing on a server rather than the client.
	remote bool
	// ctx, when set, carries the request's cancellation signal: a server
	// stops pacing (sleeping) for work whose client has already abandoned
	// the reply. Usage is still charged in full — the cycles were committed
	// when the handler started.
	ctx context.Context

	mu    sync.Mutex
	usage CtxUsage
}

// CtxUsage is what one service invocation consumed.
type CtxUsage struct {
	// Megacycles is effective CPU demand executed (after FP expansion).
	Megacycles float64
	// ComputeSeconds is time spent computing.
	ComputeSeconds float64
	// FetchSeconds is time spent fetching uncached file data.
	FetchSeconds float64
	// Files lists the Coda files accessed.
	Files []predict.FileAccess
	// FetchedBytes counts file-server bytes fetched.
	FetchedBytes int64
}

// NewServiceContext builds a context for one invocation on node; account
// may be nil for machines whose energy is not metered.
func NewServiceContext(clock sim.Clock, node *Node, account *EnergyAccount) *ServiceContext {
	return &ServiceContext{clock: clock, node: node, account: account, remote: account == nil}
}

// Machine returns the hosting machine.
func (c *ServiceContext) Machine() *sim.Machine { return c.node.Machine() }

// SetContext attaches the request's cancellation context. Server wrappers
// call it so a cancelled stream (hedge loser, expired deadline) stops
// consuming pacing time mid-handler.
func (c *ServiceContext) SetContext(ctx context.Context) { c.ctx = ctx }

// pacedSleep advances time for metered work. Under a simulated clock, or
// without a cancellation context, it is a plain clock sleep; under the real
// clock it returns early when the request is cancelled, so abandoned work
// stops occupying a server worker for the remainder of its pacing.
func (c *ServiceContext) pacedSleep(t time.Duration) {
	if c.ctx == nil || c.ctx.Done() == nil {
		c.clock.Sleep(t)
		return
	}
	if _, real := c.clock.(sim.RealClock); !real {
		c.clock.Sleep(t)
		return
	}
	timer := time.NewTimer(t)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-c.ctx.Done():
	}
}

// Compute consumes CPU, advancing time according to the machine's speed
// and load and draining client energy when metered.
func (c *ServiceContext) Compute(d sim.ComputeDemand) {
	t, eff := c.node.Machine().ComputeTime(d)
	c.node.Machine().ChargeCycles(eff)
	c.pacedSleep(t)
	if c.account != nil {
		c.account.DrainCompute(t)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.usage.Megacycles += eff
	c.usage.ComputeSeconds += sim.Seconds(t)
}

// ReadFile opens a Coda file, fetching it from the file servers on a miss.
func (c *ServiceContext) ReadFile(path string) error {
	res, err := c.node.Coda().Read(path)
	if err != nil {
		return fmt.Errorf("core: read %q on %s: %w", path, c.node.Machine().Name(), err)
	}
	var fetchT time.Duration
	if res.FetchedBytes > 0 && c.node.FSLink() != nil {
		fetchT, err = c.node.FSLink().TransferTime(res.FetchedBytes)
		if err != nil {
			return fmt.Errorf("core: fetch %q: %w", path, err)
		}
		c.pacedSleep(fetchT)
		if c.account != nil {
			c.account.DrainNetwork(fetchT)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.usage.Files = append(c.usage.Files, predict.FileAccess{
		Path:      path,
		SizeBytes: res.SizeBytes,
		Remote:    c.remote,
	})
	c.usage.FetchedBytes += res.FetchedBytes
	c.usage.FetchSeconds += sim.Seconds(fetchT)
	return nil
}

// WriteFile records a whole-file modification of the given size.
func (c *ServiceContext) WriteFile(path string, sizeBytes int64) error {
	res, err := c.node.Coda().Write(path, sizeBytes)
	if err != nil {
		return fmt.Errorf("core: write %q on %s: %w", path, c.node.Machine().Name(), err)
	}
	var sendT time.Duration
	if res.ThroughBytes > 0 && c.node.FSLink() != nil {
		sendT, err = c.node.FSLink().TransferTime(res.ThroughBytes)
		if err != nil {
			return fmt.Errorf("core: write-through %q: %w", path, err)
		}
		c.pacedSleep(sendT)
		if c.account != nil {
			c.account.DrainNetwork(sendT)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Writes are deliberately not recorded as file accesses: the access
	// predictor estimates fetch cost, and written files are replaced, not
	// fetched.
	c.usage.FetchSeconds += sim.Seconds(sendT)
	return nil
}

// Usage returns what the invocation consumed so far.
func (c *ServiceContext) Usage() CtxUsage {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.usage
	u.Files = append([]predict.FileAccess(nil), c.usage.Files...)
	return u
}
