package core

import (
	"strings"
	"testing"
	"time"

	"spectra/internal/coda"
	"spectra/internal/obs"
	"spectra/internal/sim"
	"spectra/internal/solver"
)

// startStallServer hosts the toy service on a loopback server whose handler
// blocks until the returned channel is closed, simulating a server that is
// reachable and polls healthily but has stopped making progress.
func startStallServer(t *testing.T, name string) (string, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	machine := sim.NewMachine(sim.MachineConfig{Name: name, SpeedMHz: 1000, OnWallPower: true})
	node := NewNode(machine, coda.NewClient(name, coda.NewFileServer(), 0), nil)
	srv := NewServer(name, node, sim.RealClock{})
	srv.Register("toy", func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		<-gate
		return []byte("stalled"), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	t.Cleanup(func() { close(gate) }) // LIFO: unblock handlers before Close drains
	return addr, gate
}

// TestHedgedRequestBeatsStalledPrimary is the tail-killing path end to end:
// the decided server accepts the request and stalls; after the hedge delay a
// backup request runs on the next-best server, its reply wins, the stalled
// primary is cancelled mid-exchange, and the operation completes in hedge
// time instead of budget time. Run under -race this also proves the
// coordinator's serial accounting of concurrent attempt results.
func TestHedgedRequestBeatsStalledPrimary(t *testing.T) {
	stallAddr, _ := startStallServer(t, "stall")
	fastAddr := startLiveServer(t, "fast", 1000)

	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 2, BusyW: 10, NetW: 3},
		OnWallPower: true,
		Battery:     sim.NewBattery(100_000),
	})
	observer := obs.NewObserver()
	setup, err := NewLiveSetup(LiveOptions{
		Host:    host,
		Servers: map[string]string{"stall": stallAddr, "fast": fastAddr},
		Obs:     observer,
		Deadline: DeadlineOptions{
			Floor:      5 * time.Second, // ample budget: the hedge, not the deadline, must resolve this
			HedgeDelay: 30 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { setup.Runtime.Close() })
	setup.Host.RegisterService("toy", liveWork)

	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "toy.hedge",
		Service: "toy",
		Plans:   []PlanSpec{{Name: "local"}, {Name: "remote", UsesServer: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()
	setup.Client.Probe()

	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "stall", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out, err := octx.DoRemoteOp("run", []byte("x"))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged DoRemoteOp failed: %v", err)
	}
	if string(out) != "done" {
		t.Fatalf("hedged output = %q, want the fast server's reply", out)
	}
	if elapsed >= 4*time.Second {
		t.Fatalf("hedged op took %v; the backup should have answered in hedge time", elapsed)
	}
	if got := octx.Decision().Alternative.Server; got != "fast" {
		t.Fatalf("winning server not adopted: decision on %q, want fast", got)
	}

	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range rep.Failovers {
		if ev.From == "stall" && ev.To == "fast" && strings.Contains(ev.Cause, "hedged backup") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no hedge-win failover event in report: %+v", rep.Failovers)
	}
	if n := observer.Registry.Counter(obs.MHedgeLaunched).Value(); n < 1 {
		t.Fatalf("%s = %d, want >= 1", obs.MHedgeLaunched, n)
	}
	if n := observer.Registry.Counter(obs.MHedgeWins).Value(); n < 1 {
		t.Fatalf("%s = %d, want >= 1", obs.MHedgeWins, n)
	}
}

// TestDeadlineExpiryFallsBackLocally pins the budget's hard edge: with a
// single (stalled) server and no backup to hedge to, the operation must not
// outwait the stall — the budget expires, the in-flight exchange is
// cancelled, and the local fallback completes the work degraded.
func TestDeadlineExpiryFallsBackLocally(t *testing.T) {
	stallAddr, _ := startStallServer(t, "stall")

	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    1000,
		Power:       sim.PowerModel{IdleW: 2, BusyW: 10, NetW: 3},
		OnWallPower: true,
		Battery:     sim.NewBattery(100_000),
	})
	observer := obs.NewObserver()
	setup, err := NewLiveSetup(LiveOptions{
		Host:    host,
		Servers: map[string]string{"stall": stallAddr},
		Obs:     observer,
		Deadline: DeadlineOptions{
			Floor:   300 * time.Millisecond,
			Ceiling: 300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { setup.Runtime.Close() })
	setup.Host.RegisterService("toy", liveWork)

	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "toy.budget",
		Service: "toy",
		Plans:   []PlanSpec{{Name: "local"}, {Name: "remote", UsesServer: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()

	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "stall", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out, err := octx.DoRemoteOp("run", []byte("x"))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budget-bounded op failed instead of falling back: %v", err)
	}
	if string(out) != "done" {
		t.Fatalf("fallback output = %q", out)
	}
	// The remote wait must end at the 300ms budget (plus local execution and
	// scheduling slack), never at the stall's duration.
	if elapsed >= 3*time.Second {
		t.Fatalf("operation outwaited its 300ms budget: %v", elapsed)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("local fallback must mark the report degraded")
	}
	if n := observer.Registry.Counter(obs.MDeadlineExceeded).Value(); n < 1 {
		t.Fatalf("%s = %d, want >= 1", obs.MDeadlineExceeded, n)
	}
}

// TestDeadlineOptionsClamp pins the budget derivation arithmetic.
func TestDeadlineOptionsClamp(t *testing.T) {
	var o DeadlineOptions
	if got := o.budgetFor(1.0); got != 3*time.Second {
		t.Fatalf("default multiplier budget = %v, want 3s", got)
	}
	if got := o.budgetFor(0.001); got != 100*time.Millisecond {
		t.Fatalf("floor clamp = %v, want 100ms", got)
	}
	if got := o.budgetFor(1e6); got != 30*time.Second {
		t.Fatalf("ceiling clamp = %v, want 30s", got)
	}
	custom := DeadlineOptions{Multiplier: 2, Floor: time.Second, Ceiling: 4 * time.Second}
	if got := custom.budgetFor(1.0); got != 2*time.Second {
		t.Fatalf("custom budget = %v, want 2s", got)
	}
	if got := custom.budgetFor(0.1); got != time.Second {
		t.Fatalf("custom floor = %v, want 1s", got)
	}
	if got := custom.budgetFor(100); got != 4*time.Second {
		t.Fatalf("custom ceiling = %v, want 4s", got)
	}
}

// TestLatencyRingP95 pins the adaptive hedge-delay sample: too few
// observations refuse to estimate, and the p95 lands in the tail.
func TestLatencyRingP95(t *testing.T) {
	var ring latencyRing
	if _, ok := ring.p95(); ok {
		t.Fatal("empty ring must not estimate")
	}
	for i := 0; i < latencyRingMinSamples-1; i++ {
		ring.record(time.Millisecond)
	}
	if _, ok := ring.p95(); ok {
		t.Fatal("undersampled ring must not estimate")
	}
	ring.record(time.Millisecond)
	if p, ok := ring.p95(); !ok || p != time.Millisecond {
		t.Fatalf("uniform sample p95 = %v, %v", p, ok)
	}
	// 95 fast observations and 5 slow ones: the p95 must land at the tail
	// boundary, not the median.
	var tail latencyRing
	for i := 0; i < 60; i++ {
		tail.record(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		tail.record(time.Second)
	}
	p, ok := tail.p95()
	if !ok || p < time.Millisecond || p > time.Second {
		t.Fatalf("tail p95 = %v, %v", p, ok)
	}

	d := DeadlineOptions{}.hedgeDelay(&tail, 10*time.Second)
	if d != p {
		t.Fatalf("hedge delay = %v, want the ring p95 %v", d, p)
	}
	capped := DeadlineOptions{HedgeDelay: time.Minute}.hedgeDelay(&tail, time.Second)
	if capped != time.Second {
		t.Fatalf("hedge delay must cap at the budget: %v", capped)
	}
}
