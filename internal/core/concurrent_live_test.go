package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"spectra/internal/coda"
	"spectra/internal/obs"
	"spectra/internal/sim"
	"spectra/internal/solver"
)

// stressWork is lighter than liveWork so the stress loop's local-fallback
// executions (10 Mc at 100 MHz = 100 ms) stay cheap.
func stressWork(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
	ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 10})
	return []byte("done"), nil
}

// startStressServer is startLiveServer without the automatic cleanup, so
// the test can kill it mid-stress to inject pool faults.
func startStressServer(t *testing.T, name string, mhz float64) (*Server, string) {
	t.Helper()
	machine := sim.NewMachine(sim.MachineConfig{
		Name:        name,
		SpeedMHz:    mhz,
		OnWallPower: true,
	})
	node := NewNode(machine, coda.NewClient(name, coda.NewFileServer(), 0), nil)
	srv := NewServer(name, node, sim.RealClock{})
	srv.Register("toy", stressWork)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr
}

// TestLiveConcurrentOperations drives many goroutines through the full
// BeginFidelityOp/DoRemoteOp/End path on the live runtime — pooled
// connections, shared snapshot cache, concurrent predictor updates — then
// kills a server mid-stress so pooled connections fault and operations
// recover through the failover ladder. Run under -race, the test is the
// decision path's concurrency certificate.
func TestLiveConcurrentOperations(t *testing.T) {
	srvA, addrA := startStressServer(t, "a", 1000)
	srvB, addrB := startStressServer(t, "b", 1000)
	defer srvB.Close()
	aKilled := false
	defer func() {
		if !aKilled {
			srvA.Close()
		}
	}()

	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 2, BusyW: 10, NetW: 3},
		OnWallPower: true,
		Battery:     sim.NewBattery(100_000),
	})
	o := obs.NewObserver()
	setup, err := NewLiveSetup(LiveOptions{
		Host:    host,
		Servers: map[string]string{"a": addrA, "b": addrB},
		Obs:     o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Runtime.Close()
	setup.Host.RegisterService("toy", stressWork)

	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "toy.stress",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()
	setup.Client.Probe()

	// Train both plans so the solver has informed demand models.
	for _, alt := range []solver.Alternative{
		{Plan: "local"},
		{Server: "a", Plan: "remote"},
		{Server: "b", Plan: "remote"},
	} {
		octx, err := setup.Client.BeginForced(op, alt, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		if alt.Plan == "remote" {
			_, err = octx.DoRemoteOp("run", []byte("x"))
		} else {
			_, err = octx.DoLocalOp("run", []byte("x"))
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := octx.End(); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	runWave := func(iters int, forced *solver.Alternative) {
		t.Helper()
		var wg sync.WaitGroup
		var completed atomic.Int64
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					var octx *OpContext
					var err error
					if forced != nil {
						octx, err = setup.Client.BeginForced(op, *forced, nil, "")
						if err != nil {
							// The forced server has already been marked
							// unreachable by a sibling's transport fault; fall
							// through to a free decision so the operation
							// still completes end to end.
							octx, err = setup.Client.BeginFidelityOp(op, nil, "")
						}
					} else {
						octx, err = setup.Client.BeginFidelityOp(op, nil, "")
					}
					if err != nil {
						t.Error(err)
						return
					}
					if octx.Decision().Alternative.Plan == "remote" {
						_, err = octx.DoRemoteOp("run", []byte("x"))
					} else {
						_, err = octx.DoLocalOp("run", []byte("x"))
					}
					if err != nil {
						t.Error(err)
						octx.Abort()
						return
					}
					if _, err := octx.End(); err != nil {
						t.Error(err)
						return
					}
					completed.Add(1)
				}
			}()
		}
		// Concurrent polling and probing, as the background poller would do
		// in production, stresses the snapshot path from a second angle.
		pollDone := make(chan struct{})
		go func() {
			defer close(pollDone)
			for i := 0; i < 3; i++ {
				setup.Client.PollServers()
				setup.Client.Probe()
			}
		}()
		wg.Wait()
		<-pollDone
		if got := completed.Load(); got != int64(goroutines*iters) {
			t.Fatalf("completed %d/%d operations", got, goroutines*iters)
		}
	}

	// Wave 1: healthy cluster, solver decides freely.
	runWave(4, nil)

	// Kill server "a": its pooled connections fault on next use. Forcing the
	// decision onto the dead server makes every goroutine exercise
	// eviction + transparent failover (to "b" or the local fallback).
	srvA.Close()
	aKilled = true
	runWave(2, &solver.Alternative{Server: "a", Plan: "remote"})

	evicted := o.Registry.Counter(obs.MPoolEvicted).Value()
	if evicted == 0 {
		t.Fatal("killing a server evicted no pooled connections")
	}
	if hits := o.Registry.Counter(obs.MSnapCacheHits).Value(); hits == 0 {
		t.Fatal("concurrent Begins never shared a cached snapshot")
	}
}
