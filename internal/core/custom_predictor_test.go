package core

import (
	"testing"
	"time"

	"spectra/internal/predict"
	"spectra/internal/solver"
)

// analyticCPU is an application-specific predictor (paper §3.4): it knows
// the exact cycle cost analytically and needs no training at all.
type analyticCPU struct {
	perUnit float64
	// observed counts samples, proving Spectra still feeds the predictor.
	observed int
}

func (a *analyticCPU) Observe(predict.Observation) { a.observed++ }

func (a *analyticCPU) Predict(q predict.Query) (float64, bool) {
	if q.Discrete["plan"] != "remote" {
		return 0, true
	}
	return a.perUnit * q.Params["units"], true
}

func TestCustomPredictorUsedWithoutTraining(t *testing.T) {
	setup := newToySetup(t)
	remoteCPU := &analyticCPU{perUnit: 100}

	// Both CPU predictors are analytic: local execution is known to cost
	// 500 Mc per unit, remote 100 Mc per unit, so the decision is informed
	// with zero training.
	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "custom.op",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
		Params: []string{"units"},
		Predictors: &CustomPredictors{
			CPULocal:  &analyticLocalCPU{perUnit: 500},
			CPURemote: remoteCPU,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()

	// No training at all: the analytic predictors alone inform the
	// decision. Remote: 5x100 Mc on a 1000 MHz server ~ 0.5 s; local:
	// 5x500 Mc on a 100 MHz client ~ 25 s.
	octx, err := setup.Client.BeginFidelityOp(op, map[string]float64{"units": 5}, "")
	if err != nil {
		t.Fatal(err)
	}
	d := octx.Decision()
	if d.Alternative.Plan != "remote" {
		t.Fatalf("decision = %+v, want remote with zero training", d.Alternative)
	}
	if d.Predicted.Latency < 400*time.Millisecond || d.Predicted.Latency > time.Second {
		t.Fatalf("predicted latency = %v, want ~0.5s", d.Predicted.Latency)
	}
	if _, err := octx.DoRemoteOp("run", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := octx.End(); err != nil {
		t.Fatal(err)
	}
	// The custom predictors still receive observations.
	if remoteCPU.observed == 0 {
		t.Fatal("custom predictor received no observations")
	}
}

// analyticLocalCPU mirrors analyticCPU for the local plan.
type analyticLocalCPU struct {
	perUnit  float64
	observed int
}

func (a *analyticLocalCPU) Observe(predict.Observation) { a.observed++ }

func (a *analyticLocalCPU) Predict(q predict.Query) (float64, bool) {
	if q.Discrete["plan"] != "local" {
		return 0, true
	}
	return a.perUnit * q.Params["units"], true
}

func TestCustomPredictorPartialOverride(t *testing.T) {
	// Only the byte predictor is overridden; the rest stay self-tuning.
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "partial.op",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
		Predictors: &CustomPredictors{
			NetBytes: &analyticCPU{perUnit: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	for i := 0; i < 3; i++ {
		runToyOp(t, setup, op, solver.Alternative{Plan: "local"})
		runToyOp(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	}
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Plan != "remote" {
		t.Fatalf("decision = %+v", octx.Decision().Alternative)
	}
	octx.Abort()
}

// runToyOp is runToy for arbitrary operations registered on the toy setup.
func runToyOp(t *testing.T, setup *SimSetup, op *Operation, alt solver.Alternative) Report {
	t.Helper()
	octx, err := setup.Client.BeginForced(op, alt, nil, "")
	if err != nil {
		t.Fatalf("BeginForced(%v): %v", alt, err)
	}
	if alt.Plan == "remote" {
		if _, err := octx.DoRemoteOp("run", []byte("x")); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := octx.DoLocalOp("run", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
