package core

import (
	"math"
	"testing"
	"time"

	"spectra/internal/coda"
	"spectra/internal/sim"
	"spectra/internal/simnet"
)

func newEnvFixture(t *testing.T) (*Env, *coda.FileServer) {
	t.Helper()
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	fs := coda.NewFileServer()
	fs.Store("vol", "/coda/a", 100_000)

	host := sim.NewMachine(sim.MachineConfig{
		Name:        "host",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: false,
		Battery:     sim.NewBattery(10_000),
	})
	fsLink := simnet.NewLink(simnet.LinkConfig{
		Name:         "fs",
		BandwidthBps: 100_000,
	})
	node := NewNode(host, coda.NewClient("host", fs, 0), fsLink)
	return NewEnv(clock, fs, node), fs
}

func TestServiceContextComputeAccounting(t *testing.T) {
	env, _ := newEnvFixture(t)
	ctx := NewServiceContext(env.Clock(), env.Host(), env.HostAccount())

	before := env.Clock().Now()
	ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 200})
	elapsed := env.Clock().Now().Sub(before)
	if elapsed != 2*time.Second {
		t.Fatalf("compute advanced %v, want 2s", elapsed)
	}
	u := ctx.Usage()
	if u.Megacycles != 200 || u.ComputeSeconds != 2 {
		t.Fatalf("usage = %+v", u)
	}
	// Busy power on battery: 2s x 10W = 20J drained and attributed.
	if got := env.HostAccount().AttributedJoules(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("attributed = %v, want 20", got)
	}
	if got := env.Host().Machine().Battery().DrainedJoules(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("battery drained = %v, want 20", got)
	}
}

func TestServiceContextReadFetchAccounting(t *testing.T) {
	env, _ := newEnvFixture(t)
	ctx := NewServiceContext(env.Clock(), env.Host(), env.HostAccount())

	before := env.Clock().Now()
	if err := ctx.ReadFile("/coda/a"); err != nil {
		t.Fatal(err)
	}
	// 100 KB at 100 KB/s = 1s fetch.
	if got := env.Clock().Now().Sub(before); got != time.Second {
		t.Fatalf("fetch advanced %v, want 1s", got)
	}
	u := ctx.Usage()
	if len(u.Files) != 1 || u.Files[0].Path != "/coda/a" || u.Files[0].Remote {
		t.Fatalf("files = %+v", u.Files)
	}
	if u.FetchedBytes != 100_000 || u.FetchSeconds != 1 {
		t.Fatalf("usage = %+v", u)
	}
	// Network power: 1s x 2W.
	if got := env.HostAccount().AttributedJoules(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("attributed = %v, want 2", got)
	}

	// Second read: cache hit, no time, no energy.
	before = env.Clock().Now()
	if err := ctx.ReadFile("/coda/a"); err != nil {
		t.Fatal(err)
	}
	if got := env.Clock().Now().Sub(before); got != 0 {
		t.Fatalf("cache hit advanced %v", got)
	}
}

func TestServiceContextRemoteFlag(t *testing.T) {
	env, fs := newEnvFixture(t)
	serverMachine := sim.NewMachine(sim.MachineConfig{Name: "srv", SpeedMHz: 1000, OnWallPower: true})
	serverNode := NewNode(serverMachine, coda.NewClient("srv", fs, 0), nil)
	ctx := NewServiceContext(env.Clock(), serverNode, nil) // nil account = remote
	if err := ctx.ReadFile("/coda/a"); err != nil {
		t.Fatal(err)
	}
	u := ctx.Usage()
	if len(u.Files) != 1 || !u.Files[0].Remote {
		t.Fatalf("remote read not flagged: %+v", u.Files)
	}
}

func TestServiceContextWriteAccounting(t *testing.T) {
	env, fs := newEnvFixture(t)
	ctx := NewServiceContext(env.Clock(), env.Host(), env.HostAccount())

	// Strong mode: write-through costs a transfer.
	before := env.Clock().Now()
	if err := ctx.WriteFile("/coda/a", 50_000); err != nil {
		t.Fatal(err)
	}
	if got := env.Clock().Now().Sub(before); got != 500*time.Millisecond {
		t.Fatalf("write-through advanced %v, want 500ms", got)
	}
	info, err := fs.Lookup("/coda/a")
	if err != nil {
		t.Fatal(err)
	}
	if info.SizeBytes != 50_000 {
		t.Fatalf("server size = %d", info.SizeBytes)
	}
	// Writes are not recorded as file accesses.
	if got := ctx.Usage().Files; len(got) != 0 {
		t.Fatalf("write recorded as access: %+v", got)
	}

	// Weak mode: buffered, free.
	env.Host().Coda().SetMode(coda.Weak)
	before = env.Clock().Now()
	if err := ctx.WriteFile("/coda/a", 60_000); err != nil {
		t.Fatal(err)
	}
	if got := env.Clock().Now().Sub(before); got != 0 {
		t.Fatalf("buffered write advanced %v", got)
	}
	if !env.Host().Coda().IsDirty("/coda/a") {
		t.Fatal("buffered write not dirty")
	}
}

func TestEnergyAccountAttributesOnWallPower(t *testing.T) {
	machine := sim.NewMachine(sim.MachineConfig{
		Name:        "m",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: true,
		Battery:     sim.NewBattery(1000),
	})
	acct := NewEnergyAccount(machine)
	acct.DrainCompute(time.Second)
	// Attribution continues on wall power (like the paper's multimeter)...
	if got := acct.AttributedJoules(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("attributed = %v, want 10", got)
	}
	// ...but the battery does not drain.
	if got := machine.Battery().DrainedJoules(); got != 0 {
		t.Fatalf("battery drained on wall power: %v", got)
	}
}

func TestEnvServerRegistry(t *testing.T) {
	env, fs := newEnvFixture(t)
	if _, _, ok := env.Server("ghost"); ok {
		t.Fatal("ghost server found")
	}
	m := sim.NewMachine(sim.MachineConfig{Name: "b", SpeedMHz: 500, OnWallPower: true})
	link := simnet.NewLink(simnet.LinkConfig{Name: "l", BandwidthBps: 1000})
	env.AddServer("b", NewNode(m, coda.NewClient("b", fs, 0), nil), link)
	node, gotLink, ok := env.Server("b")
	if !ok || node.Machine() != m || gotLink != link {
		t.Fatal("server lookup wrong")
	}
	if names := env.ServerNames(); len(names) != 1 || names[0] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestNodeServiceRegistry(t *testing.T) {
	env, _ := newEnvFixture(t)
	node := env.Host()
	if _, ok := node.Service("missing"); ok {
		t.Fatal("missing service found")
	}
	node.RegisterService("a", func(*ServiceContext, string, []byte) ([]byte, error) { return nil, nil })
	node.RegisterService("b", func(*ServiceContext, string, []byte) ([]byte, error) { return nil, nil })
	if _, ok := node.Service("a"); !ok {
		t.Fatal("service a missing")
	}
	names := node.ServiceNames()
	if len(names) != 2 {
		t.Fatalf("services = %v", names)
	}
}
