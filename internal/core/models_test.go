package core

import (
	"math"
	"testing"

	"spectra/internal/predict"
)

func TestOpModelsObserveAndPredict(t *testing.T) {
	m := newOpModels([]string{"len"}, ModelOptions{Decay: 1}, nil)
	rec := predict.Record{
		Params:   map[string]float64{"len": 2},
		Discrete: map[string]string{"plan": "local"},
	}
	records := m.observe(rec, phaseUsage{localSeconds: 2}, observedUsage{
		localMegacycles:  200,
		remoteMegacycles: 0,
		netBytes:         100,
		rpcs:             1,
		energyJoules:     20,
		energyValid:      true,
		files:            []predict.FileAccess{{Path: "/f", SizeBytes: 10}},
	})
	// One record per numeric resource, plus energy, plus files.
	if len(records) != 6 {
		t.Fatalf("records = %d, want 6", len(records))
	}
	q := predict.Query{
		Params:   map[string]float64{"len": 2},
		Discrete: map[string]string{"plan": "local"},
	}
	if got, ok := m.cpuLocal.Predict(q); !ok || math.Abs(got-200) > 1e-6 {
		t.Fatalf("cpuLocal = (%v,%v)", got, ok)
	}
	if got, ok := m.netBytes.Predict(q); !ok || math.Abs(got-100) > 1e-6 {
		t.Fatalf("netBytes = (%v,%v)", got, ok)
	}
	if got, ok := m.energy.Predict(phaseUsage{localSeconds: 2}.features()); !ok || math.Abs(got-20) > 1e-6 {
		t.Fatalf("energy = (%v,%v)", got, ok)
	}
	cands := m.fileCandidates("plan=local", "")
	if len(cands) != 1 || cands[0].Path != "/f" {
		t.Fatalf("file candidates = %+v", cands)
	}
}

func TestOpModelsSkipsInvalidEnergy(t *testing.T) {
	m := newOpModels(nil, ModelOptions{Decay: 1}, nil)
	records := m.observe(predict.Record{}, phaseUsage{}, observedUsage{
		localMegacycles: 10,
		energyJoules:    99,
		energyValid:     false,
	})
	for _, r := range records {
		if r.Resource == resEnergy {
			t.Fatal("invalid energy was recorded")
		}
	}
	if _, ok := m.energy.Predict(nil); ok {
		t.Fatal("energy model absorbed an invalid sample")
	}
}

func TestOpModelsReplayRoundTrip(t *testing.T) {
	// Observations run through observe() then replayed into a fresh model
	// must produce identical predictions.
	first := newOpModels([]string{"len"}, ModelOptions{Decay: 1}, nil)
	var log []predict.Record
	for i := 1; i <= 5; i++ {
		rec := predict.Record{
			Params:   map[string]float64{"len": float64(i)},
			Discrete: map[string]string{"plan": "remote"},
		}
		log = append(log, first.observe(rec, phaseUsage{idleSeconds: float64(i)}, observedUsage{
			remoteMegacycles: float64(100 * i),
			netBytes:         float64(10 * i),
			rpcs:             1,
			energyJoules:     float64(i),
			energyValid:      true,
			files:            []predict.FileAccess{{Path: "/f", SizeBytes: 10, Remote: true}},
		})...)
	}

	second := newOpModels([]string{"len"}, ModelOptions{Decay: 1}, nil)
	for _, rec := range log {
		second.replay(rec)
	}
	q := predict.Query{
		Params:   map[string]float64{"len": 3},
		Discrete: map[string]string{"plan": "remote"},
	}
	a, okA := first.cpuRemote.Predict(q)
	b, okB := second.cpuRemote.Predict(q)
	if !okA || !okB || math.Abs(a-b) > 1e-9 {
		t.Fatalf("replayed cpuRemote %v vs %v", a, b)
	}
	ca := first.fileCandidates("plan=remote", "")
	cb := second.fileCandidates("plan=remote", "")
	if len(ca) != len(cb) || ca[0].Likelihood != cb[0].Likelihood || !cb[0].Remote {
		t.Fatalf("replayed file candidates %+v vs %+v", ca, cb)
	}
}

func TestFileModelBinsByDiscreteKey(t *testing.T) {
	fm := newFileModel(1)
	fm.observe("plan=local;vocab=full", []predict.FileAccess{{Path: "/lm-full", SizeBytes: 100}})
	fm.observe("plan=local;vocab=reduced", []predict.FileAccess{{Path: "/lm-small", SizeBytes: 10}})

	full := fm.candidates("plan=local;vocab=full", accessThreshold)
	if len(full) != 1 || full[0].Path != "/lm-full" {
		t.Fatalf("full bin = %+v", full)
	}
	small := fm.candidates("plan=local;vocab=reduced", accessThreshold)
	if len(small) != 1 || small[0].Path != "/lm-small" {
		t.Fatalf("reduced bin = %+v", small)
	}
	// Unseen bin: the generic model knows both files.
	generic := fm.candidates("plan=hybrid;vocab=full", accessThreshold)
	if len(generic) != 2 {
		t.Fatalf("generic fallback = %+v", generic)
	}
}

func TestOpModelsDataSpecificFiles(t *testing.T) {
	m := newOpModels(nil, ModelOptions{Decay: 1}, nil)
	m.observe(predict.Record{Data: "small", Discrete: map[string]string{"plan": "remote"}},
		phaseUsage{}, observedUsage{files: []predict.FileAccess{{Path: "/small.tex", SizeBytes: 1}}})
	m.observe(predict.Record{Data: "large", Discrete: map[string]string{"plan": "remote"}},
		phaseUsage{}, observedUsage{files: []predict.FileAccess{{Path: "/large.tex", SizeBytes: 1}}})

	small := m.fileCandidates("plan=remote", "small")
	if len(small) != 1 || small[0].Path != "/small.tex" {
		t.Fatalf("small data candidates = %+v", small)
	}
	// Unknown data object: generic model sees both.
	unknown := m.fileCandidates("plan=remote", "new")
	if len(unknown) != 2 {
		t.Fatalf("unknown data candidates = %+v", unknown)
	}
}

func TestOpModelsAblationSwitches(t *testing.T) {
	m := newOpModels([]string{"len"}, ModelOptions{
		Decay:                 1,
		DisableDataModels:     true,
		DisableFilePrediction: true,
	}, nil)
	m.observe(predict.Record{Data: "doc"}, phaseUsage{}, observedUsage{
		files: []predict.FileAccess{{Path: "/f", SizeBytes: 10}},
	})
	m.observe(predict.Record{Data: "doc"}, phaseUsage{}, observedUsage{files: nil})

	// With file prediction disabled every known file has likelihood 1
	// even after a miss decayed it.
	cands := m.fileCandidates("", "doc")
	if len(cands) != 1 || cands[0].Likelihood != 1 {
		t.Fatalf("disabled-prediction candidates = %+v", cands)
	}
	// Data models disabled: no per-data predictors were created.
	m.mu.Lock()
	n := len(m.filesByData)
	m.mu.Unlock()
	if n != 0 {
		t.Fatalf("data models created despite DisableDataModels: %d", n)
	}
}

func TestPhaseFeatures(t *testing.T) {
	p := phaseUsage{localSeconds: 1, netSeconds: 2, idleSeconds: 3}
	f := p.features()
	if f[featLocalSeconds] != 1 || f[featNetSeconds] != 2 || f[featIdleSeconds] != 3 {
		t.Fatalf("features = %v", f)
	}
}
