package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/wire"
)

// OpContext is one in-flight operation execution: the handle an
// application uses between begin_fidelity_op and end_fidelity_op.
type OpContext struct {
	client *Client
	op     *Operation
	id     uint64

	decision Decision
	params   map[string]float64
	data     string

	simStart  time.Time
	wallStart time.Time
	phases    phaseUsage
	started   bool
	ended     bool
	aborted   bool

	// cacheKey is the decision-cache identity of this Begin ("" when the
	// cache was off or bypassed); End feeds the execution outcome back to
	// the entry through it.
	cacheKey string

	// failovers records transparent recoveries performed mid-operation;
	// degraded marks executions that left the decided plan (e.g. a remote
	// component ran locally), whose observations are not representative
	// and are therefore withheld from the demand models.
	failovers []FailoverEvent
	degraded  bool

	// trace, when non-nil, accumulates the decision trace emitted at End
	// or Abort. predDemand is the chosen alternative's per-resource
	// predicted demand (valid when predValid), kept even without a sink so
	// prediction-error accounting works metrics-only.
	trace      *obs.DecisionTrace
	predDemand obs.ResourceDemand
	predValid  bool
	// spans records the operation's phase tree; nil (all methods no-op)
	// when tracing is off, keeping the untraced path allocation-free.
	spans *obs.SpanRecorder
}

// Decision returns how Spectra chose to execute the operation; the
// application reads the plan, server, and fidelity from it.
func (x *OpContext) Decision() Decision { return x.decision }

// ID returns the operation instance identifier.
func (x *OpContext) ID() uint64 { return x.id }

// Fidelity returns the chosen fidelity assignment.
func (x *OpContext) Fidelity() map[string]string { return x.decision.Alternative.Fidelity }

// Plan returns the chosen execution plan name.
func (x *OpContext) Plan() string { return x.decision.Alternative.Plan }

// Server returns the chosen server ("" for purely local execution). After
// a mid-operation failover it names the server actually in use.
func (x *OpContext) Server() string { return x.decision.Alternative.Server }

// errEnded guards against use after End.
var errEnded = errors.New("core: operation already ended")

// errAborted guards against End after Abort.
var errAborted = errors.New("core: operation aborted")

// DoLocalOp makes an RPC to the local Spectra server (paper §3.1).
func (x *OpContext) DoLocalOp(optype string, payload []byte) ([]byte, error) {
	if x.ended {
		return nil, errEnded
	}
	sp := x.spans.Start(obs.SpanLocal, -1)
	out, rep, err := x.client.runtime.LocalCall(x.op.spec.Service, optype, payload)
	x.spans.EndSpan(sp)
	x.account(rep)
	if err != nil {
		return nil, fmt.Errorf("core: do_local_op %q: %w", optype, err)
	}
	return out, nil
}

// DoRemoteOp makes an RPC to the chosen remote Spectra server. A transient
// failure — broken connection, timeout, partitioned link — is recovered
// inside Spectra: the call is re-planned onto the next-best server from
// the current decision space (bounded by the failover budget) and finally
// onto the client itself, so the application only sees an error when every
// placement is exhausted. Recoveries are recorded in the Report.
//
// On runtimes that support cancellation (DeadlineRuntime, i.e. live
// setups) the whole call — including the failover ladder — runs inside a
// latency budget derived from the solver's predicted latency, and a hedged
// backup may race the primary; see DeadlineOptions.
func (x *OpContext) DoRemoteOp(optype string, payload []byte) ([]byte, error) {
	if x.ended {
		return nil, errEnded
	}
	server := x.decision.Alternative.Server
	if server == "" {
		return nil, errors.New("core: do_remote_op on a local execution plan")
	}
	if dr, ok := x.client.runtime.(DeadlineRuntime); ok && !x.client.deadline.Disabled {
		return x.doRemoteDeadline(dr, optype, payload)
	}
	// No deadline machinery on this runtime: the operation legitimately
	// runs unbounded, but the context still threads through the call and
	// the failover ladder from the one sanctioned root.
	ctx, cancel := budgetContext(0)
	defer cancel()
	out, rep, err := x.remoteCallCtx(ctx, server, optype, payload)
	x.account(rep)
	if err == nil {
		x.client.health.RecordSuccess(server)
		return out, nil
	}
	if x.client.failover.disabled() || !isTransientExec(err) {
		return nil, fmt.Errorf("core: do_remote_op %q on %q: %w", optype, server, err)
	}
	x.client.noteRemoteFailure(server, err)
	out, ranOn, degraded, err := x.failRemote(ctx, optype, payload, server, err, nil)
	if err != nil {
		return nil, err
	}
	if degraded {
		x.degraded = true
	} else {
		// Subsequent calls of this operation go straight to the adopted
		// server, and End's observation is attributed to it.
		x.decision.Alternative.Server = ranOn
	}
	return out, nil
}

// remoteCallCtx wraps the runtime's remote call with span recording: an
// rpc span covers the exchange, the trace context rides the request, and
// the server's (already rebased) spans are grafted under the rpc span. On
// a DeadlineRuntime the context's remaining budget caps the exchange and
// rides the request; other runtimes ignore the context.
func (x *OpContext) remoteCallCtx(ctx context.Context, server, optype string, payload []byte) ([]byte, callReport, error) {
	sp := x.spans.Start(obs.SpanRPC, -1)
	var tc *wire.TraceContext
	if sp >= 0 {
		tc = &wire.TraceContext{TraceID: x.id, SpanID: uint64(sp)}
	}
	var (
		out []byte
		rep callReport
		err error
	)
	if dr, ok := x.client.runtime.(DeadlineRuntime); ok {
		out, rep, err = dr.RemoteCallContext(ctx, server, x.op.spec.Service, optype, payload, tc)
	} else {
		// The base Runtime interface has no context parameter — SimRuntime
		// runs on virtual time, where a wall-clock budget is meaningless.
		//lint:allow ctxflow base Runtime has no context; only non-deadline runtimes reach this arm
		out, rep, err = x.client.runtime.RemoteCall(server, x.op.spec.Service, optype, payload, tc)
	}
	if sp >= 0 {
		x.spans.Attach(sp, rep.serverSpans)
		x.spans.EndSpan(sp)
	}
	return out, rep, err
}

// account routes a call report into the monitor framework and the phase
// tracker.
func (x *OpContext) account(rep callReport) {
	x.phases.localSeconds += rep.phases.localSeconds
	x.phases.netSeconds += rep.phases.netSeconds
	x.phases.idleSeconds += rep.phases.idleSeconds
	x.client.monitors.AddUsage(x.id, monitor.Usage{
		RemoteMegacycles: rep.remoteMegacycles,
		BytesSent:        rep.bytesSent,
		BytesReceived:    rep.bytesReceived,
		RPCs:             rep.rpcs,
		Files:            rep.files,
	})
}

// Report summarizes a completed operation.
type Report struct {
	// Usage is the merged measurement from all monitors.
	Usage monitor.Usage
	// Elapsed is the operation's duration in runtime time (virtual time in
	// the simulation), including consistency enforcement.
	Elapsed time.Duration
	// Decision echoes how the operation was placed. After a failover the
	// alternative's Server is the one actually adopted.
	Decision Decision
	// Failovers records transparent recoveries performed mid-operation;
	// empty when execution went as decided.
	Failovers []FailoverEvent
	// Degraded is true when recovery left the decided plan (a remote
	// component executed on the client); such executions are not fed to
	// the demand models.
	Degraded bool
}

// End signals operation completion (end_fidelity_op): measurement stops,
// the demand models absorb the observation, and the usage log persists it.
// End is idempotent: calling it again — or after Abort — returns an error
// without side effects.
func (x *OpContext) End() (Report, error) {
	if x.aborted {
		return Report{}, errAborted
	}
	if x.ended {
		return Report{}, errEnded
	}
	x.ended = true
	if !x.started {
		return Report{}, errors.New("core: operation never started")
	}

	usage := x.client.monitors.StopOp(x.id)
	usage.Elapsed = x.client.runtime.Now().Sub(x.simStart)

	// Degraded executions (failover left the decided plan) are not
	// representative of the alternative's cost; withhold them from the
	// demand models and the persistent log.
	if !x.degraded {
		measured := observedUsage{
			localMegacycles:  usage.LocalMegacycles,
			remoteMegacycles: usage.RemoteMegacycles,
			netBytes:         float64(usage.BytesSent + usage.BytesReceived),
			rpcs:             float64(usage.RPCs),
			energyJoules:     usage.EnergyJoules,
			energyValid:      usage.EnergyValid,
			files:            usage.Files,
		}
		features, discrete := x.op.modelQuery(x.decision.Alternative, x.params)
		rec := predict.Record{
			Params:   features,
			Discrete: discrete,
			Data:     x.data,
		}
		records := x.op.models.observe(rec, x.phases, measured)
		if err := x.client.usageLog.AppendAll(x.op.Name(), records); err != nil {
			return Report{}, fmt.Errorf("core: persist usage: %w", err)
		}
	}

	x.client.hooks.opEnd.Inc()
	if x.degraded {
		x.client.hooks.opDegraded.Inc()
	}
	// Outcome feedback: a degraded or failed-over execution proves the
	// cached placement wrong right now, so the entry is dropped and the
	// next Begin re-solves against the live picture.
	if x.client.dcache != nil && x.cacheKey != "" {
		x.client.dcache.noteOutcome(x.cacheKey, x.degraded || len(x.failovers) > 0)
	}
	x.finishObservation(usage)

	return Report{
		Usage:     usage,
		Elapsed:   usage.Elapsed,
		Decision:  x.decision,
		Failovers: append([]FailoverEvent(nil), x.failovers...),
		Degraded:  x.degraded,
	}, nil
}

// Abort ends observation without feeding the models, for callers that hit
// execution errors mid-operation. Abort is fully idempotent: calling it
// twice, after End, or on an operation that never started is a no-op.
func (x *OpContext) Abort() {
	if x.ended {
		return
	}
	x.ended = true
	x.aborted = true
	if x.started && x.client != nil {
		x.client.monitors.StopOp(x.id)
	}
	if x.client != nil {
		x.client.hooks.opAbort.Inc()
	}
	if tr := x.trace; tr != nil && x.client != nil {
		tr.End = x.client.runtime.Now()
		tr.Aborted = true
		tr.Failovers = traceFailovers(x.failovers)
		tr.Degraded = x.degraded
		tr.Spans = x.spans.Spans()
		x.client.hooks.o.Emit(tr)
	}
}

// finishObservation completes observability at End: it computes
// per-resource prediction error from the decision's predicted demand,
// feeds the accuracy tracker (representative executions only), and emits
// the decision trace.
func (x *OpContext) finishObservation(usage monitor.Usage) {
	if x.op.acc == nil && x.trace == nil {
		return
	}
	var errs map[string]float64
	if x.predValid {
		// A fixed-size list keeps the metrics-only path allocation-free;
		// the map is built only when a trace wants it.
		type resErr struct {
			res string
			err float64
		}
		list := [6]resErr{
			{obs.ResCPULocal, obs.RelativeError(x.predDemand.LocalMegacycles, usage.LocalMegacycles)},
			{obs.ResCPURemote, obs.RelativeError(x.predDemand.RemoteMegacycles, usage.RemoteMegacycles)},
			{obs.ResNetBytes, obs.RelativeError(x.predDemand.NetBytes, float64(usage.BytesSent+usage.BytesReceived))},
			{obs.ResNetRPCs, obs.RelativeError(x.predDemand.RPCs, float64(usage.RPCs))},
			{obs.ResLatency, obs.RelativeError(x.predDemand.LatencySeconds, usage.Elapsed.Seconds())},
		}
		n := 5
		if usage.EnergyValid {
			list[n] = resErr{obs.ResEnergy, obs.RelativeError(x.predDemand.EnergyJoules, usage.EnergyJoules)}
			n++
		}
		// Degraded executions did not run the decided plan; their usage
		// says nothing about the predictor, so keep them out of the rolling
		// accuracy (the trace still shows the raw comparison).
		if !x.degraded {
			for i := 0; i < n; i++ {
				x.op.acc.Observe(list[i].res, list[i].err)
			}
		}
		if x.trace != nil {
			errs = make(map[string]float64, n)
			for i := 0; i < n; i++ {
				errs[list[i].res] = list[i].err
			}
		}
	}

	if tr := x.trace; tr != nil {
		tr.End = x.client.runtime.Now()
		tr.Actual = obs.ResourceUsage{
			LocalMegacycles:  usage.LocalMegacycles,
			RemoteMegacycles: usage.RemoteMegacycles,
			BytesSent:        usage.BytesSent,
			BytesReceived:    usage.BytesReceived,
			RPCs:             usage.RPCs,
			EnergyJoules:     usage.EnergyJoules,
			EnergyValid:      usage.EnergyValid,
			ElapsedSeconds:   usage.Elapsed.Seconds(),
			Files:            len(usage.Files),
		}
		tr.PredictionError = errs
		tr.Failovers = traceFailovers(x.failovers)
		tr.Degraded = x.degraded
		tr.Spans = x.spans.Spans()
		x.client.hooks.o.Emit(tr)
	}
}
