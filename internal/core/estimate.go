package core

import (
	"sort"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/sim"
	"spectra/internal/solver"
	"spectra/internal/utility"
)

// Fallbacks used when no passive network observations exist yet for a
// reachable server.
const (
	defaultBandwidthBps = 125_000
	defaultLatency      = 10 * time.Millisecond
)

// estimator turns an execution alternative into a utility.Prediction by
// matching the operation's demand models against the resource snapshot,
// following the paper's default utility function (§3.6): execution time is
// the sum of local and remote CPU time, network transmission time, time to
// service cache misses, and time to ensure data consistency; energy comes
// from the operation's energy demand model applied to the predicted phase
// durations.
type estimator struct {
	op     *Operation
	snap   *monitor.Snapshot
	params map[string]float64
	data   string
	cons   ConsistencySource

	// dirtyVols maps every currently dirty volume to its buffered bytes.
	dirtyVols map[string]int64

	// candsByKey memoizes file-access predictions per discrete key, and
	// reintByKey the matching consistency plan.
	candsByKey map[string][]predict.FileLikelihood
	reintByKey map[string]reintPlan

	// wall measures prediction overheads (never semantics); tests inject a
	// deterministic clock through Config.OverheadClock.
	wall sim.Clock

	// filePredTime accumulates the wall-clock cost of file predictions,
	// reported as "file cache prediction" in the Figure-10 breakdown.
	filePredTime time.Duration
}

// reintPlan is what consistency enforcement would reintegrate.
type reintPlan struct {
	volumes []string
	bytes   int64
}

// newEstimator snapshots the dirty-volume state shared by all
// alternatives; per-alternative file predictions are memoized on demand.
func newEstimator(op *Operation, snap *monitor.Snapshot, params map[string]float64, data string, cons ConsistencySource, wall sim.Clock) *estimator {
	if wall == nil {
		wall = sim.RealClock{}
	}
	e := &estimator{
		op:         op,
		snap:       snap,
		params:     params,
		data:       data,
		cons:       cons,
		wall:       wall,
		dirtyVols:  make(map[string]int64),
		candsByKey: make(map[string][]predict.FileLikelihood),
		reintByKey: make(map[string]reintPlan),
	}
	if cons != nil {
		for _, v := range cons.DirtyVolumes() {
			e.dirtyVols[v] = cons.VolumeDirtyBytes(v)
		}
	}
	return e
}

// candidates returns the files an execution with the given discrete key
// may access, memoized per key.
func (e *estimator) candidates(key string) []predict.FileLikelihood {
	if cands, ok := e.candsByKey[key]; ok {
		return cands
	}
	start := e.wall.Now()
	cands := e.op.models.fileCandidates(key, e.data)
	e.candsByKey[key] = cands
	e.filePredTime += e.wall.Now().Sub(start)
	return cands
}

// reintegration returns the volumes (sorted) and total bytes consistency
// enforcement would reintegrate for a remote-files execution with the
// given discrete key: dirty volumes containing at least one file with
// non-zero access likelihood (paper §3.5).
func (e *estimator) reintegration(key string) ([]string, int64) {
	if plan, ok := e.reintByKey[key]; ok {
		return plan.volumes, plan.bytes
	}
	var plan reintPlan
	if len(e.dirtyVols) > 0 && e.cons != nil {
		need := make(map[string]bool)
		for _, f := range e.candidates(key) {
			if !f.Remote {
				continue // local reads see the buffered copy directly
			}
			vol, err := e.cons.VolumeOf(f.Path)
			if err != nil {
				continue
			}
			if _, dirty := e.dirtyVols[vol]; dirty && !need[vol] {
				need[vol] = true
				plan.volumes = append(plan.volumes, vol)
				plan.bytes += e.dirtyVols[vol]
			}
		}
		sort.Strings(plan.volumes)
	}
	e.reintByKey[key] = plan
	return plan.volumes, plan.bytes
}

// Predict evaluates one alternative.
func (e *estimator) Predict(alt solver.Alternative) utility.Prediction {
	pred, _ := e.PredictDetail(alt)
	return pred
}

// PredictDetail evaluates one alternative and additionally returns the
// per-resource demand breakdown behind the prediction, recorded in decision
// traces and compared against actual usage at End. For infeasible
// alternatives both values are zero.
func (e *estimator) PredictDetail(alt solver.Alternative) (utility.Prediction, obs.ResourceDemand) {
	plan, ok := e.op.planSpec(alt.Plan)
	if !ok {
		return utility.Prediction{}, obs.ResourceDemand{}
	}
	if plan.UsesServer && !e.snap.ServerUsable(alt.Server, e.op.spec.Service) {
		return utility.Prediction{}, obs.ResourceDemand{}
	}

	features, discrete := e.op.modelQuery(alt, e.params)
	key := predict.DiscreteKey(discrete)
	q := predict.Query{
		Params:   features,
		Discrete: discrete,
		Data:     e.data,
	}
	models := e.op.models
	localMc, _ := models.cpuLocal.Predict(q)
	remoteMc, _ := models.cpuRemote.Predict(q)
	bytes, _ := models.netBytes.Predict(q)
	rpcs, _ := models.netRPCs.Predict(q)

	var tLocal, tRemote, tNet, tMiss, tReint float64

	if avail := e.snap.LocalCPU.AvailMHz; avail > 0 && localMc > 0 {
		tLocal = localMc / avail
	}

	if plan.UsesServer {
		cpu := e.snap.RemoteCPU[alt.Server]
		if !cpu.Known || cpu.AvailMHz <= 0 {
			return utility.Prediction{}, obs.ResourceDemand{}
		}
		if remoteMc > 0 {
			tRemote = remoteMc / cpu.AvailMHz
		}
		net := e.snap.Network[alt.Server]
		bw, lat := net.BandwidthBps, net.Latency
		if !net.Known || bw <= 0 {
			bw = defaultBandwidthBps
		}
		if lat <= 0 {
			lat = defaultLatency
		}
		if bytes > 0 {
			tNet = bytes / bw
		}
		if rpcs > 0 {
			tNet += rpcs * lat.Seconds()
		}
	}

	// Cache-miss time, per accessed file, on the machine predicted to
	// perform the access (locally-read files against the client cache,
	// remotely-read files against the chosen server's cache).
	localMiss, remoteMiss := e.missSeconds(key, alt.Server)
	tMiss = localMiss + remoteMiss

	// Data-consistency time: reintegration of dirty volumes the operation
	// may read remotely, needed only for plans that execute remotely.
	if plan.UsesServer {
		if _, reintBytes := e.reintegration(key); reintBytes > 0 {
			rate := e.snap.LocalCache.FetchRateBps
			if rate <= 0 {
				rate = defaultBandwidthBps
			}
			tReint = float64(reintBytes) / rate
		}
	}

	total := tLocal + tRemote + tNet + tMiss + tReint

	// Energy: the learned phase-coefficient model applied to the predicted
	// phase split. Client network phases: transmission, reintegration, and
	// local cache-miss fetches; idle phases: remote compute and remote
	// cache-miss waits.
	phases := phaseUsage{
		localSeconds: tLocal,
		netSeconds:   tNet + tReint + localMiss,
		idleSeconds:  tRemote + remoteMiss,
	}
	energy, _ := models.energy.Predict(phases.features())
	if energy < 0 {
		energy = 0
	}

	dem := obs.ResourceDemand{
		LocalMegacycles: localMc,
		LatencySeconds:  total,
		EnergyJoules:    energy,
	}
	if plan.UsesServer {
		// Remote resources are demanded only by plans that use a server;
		// for local plans the raw model outputs are not part of the
		// prediction and would distort the per-resource error accounting.
		dem.RemoteMegacycles = remoteMc
		dem.NetBytes = bytes
		dem.RPCs = rpcs
	}
	return utility.Prediction{
		Latency:      sim.DurationSeconds(total),
		EnergyJoules: energy,
		Fidelity:     e.op.fidelityValue(alt.Fidelity),
		Feasible:     true,
	}, dem
}

// missSeconds estimates time to service cache misses: expected uncached
// bytes divided by the fetch rate of the machine predicted to perform each
// access (paper §3.5). It returns the client-side and server-side portions
// separately because they drain different client power states.
func (e *estimator) missSeconds(key, server string) (localSec, remoteSec float64) {
	cands := e.candidates(key)
	if len(cands) == 0 {
		return 0, 0
	}
	var localBytes, remoteBytes float64
	for _, f := range cands {
		cache := e.snap.LocalCache
		if f.Remote {
			cache = e.snap.RemoteCache[server]
		}
		if cache.Known && cache.Cached[f.Path] {
			continue
		}
		expected := float64(f.SizeBytes) * f.Likelihood
		if f.Remote {
			remoteBytes += expected
		} else {
			localBytes += expected
		}
	}
	toSeconds := func(bytes float64, cache monitor.CacheAvail) float64 {
		if bytes <= 0 {
			return 0
		}
		rate := cache.FetchRateBps
		if rate <= 0 {
			rate = defaultBandwidthBps
		}
		return bytes / rate
	}
	return toSeconds(localBytes, e.snap.LocalCache),
		toSeconds(remoteBytes, e.snap.RemoteCache[server])
}
