package core

import (
	"context"
	"errors"
	"fmt"
	"net"

	"spectra/internal/obs"
	"spectra/internal/simnet"
	"spectra/internal/solver"

	spectrarpc "spectra/internal/rpc"
)

// FailoverOptions tunes transparent recovery of remote-execution failures
// inside Spectra, so transient server or link faults do not surface to the
// application (paper north-star: applications delegate placement and keep
// working as resources change).
type FailoverOptions struct {
	// MaxAttempts bounds re-executions on alternative servers per failed
	// call (the failover budget, excluding the original attempt); 0
	// selects 2. Negative disables failover entirely, restoring the
	// caller-handles-it behavior.
	MaxAttempts int
	// NoLocalFallback prevents the terminal rung of the ladder: executing
	// the failed component on the client when no alternative server
	// remains. Local fallback requires the host to offer the service and
	// marks the report Degraded.
	NoLocalFallback bool
}

func (o FailoverOptions) disabled() bool { return o.MaxAttempts < 0 }

func (o FailoverOptions) budget() int {
	if o.MaxAttempts <= 0 {
		return 2
	}
	return o.MaxAttempts
}

// FailoverEvent records one transparent recovery: a call that failed on
// one placement and was re-executed on another.
type FailoverEvent struct {
	// OpType is the service operation that was re-executed.
	OpType string
	// From is the server whose call failed.
	From string
	// To is where the call was re-executed; "" means the client (local
	// fallback).
	To string
	// Cause is the transient failure that triggered the failover.
	Cause string
}

// isTransientExec classifies a remote execution failure: transient faults
// (transport errors, partitioned or fault-injected links, timeouts) may
// succeed on a different placement; remote application errors and
// configuration errors would fail identically anywhere.
func isTransientExec(err error) bool {
	if err == nil {
		return false
	}
	var rerr *spectrarpc.RemoteError
	if errors.As(err, &rerr) {
		return false
	}
	if spectrarpc.IsTransient(err) {
		return true
	}
	if errors.Is(err, simnet.ErrPartitioned) || errors.Is(err, simnet.ErrInjectedFault) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// noteRemoteFailure feeds a transient remote failure into the health
// tracker (the transport has already marked reachability). Deadline
// expiries are excluded: a budget running out says nothing about the
// server's health — it may be answering and merely slow, or the budget
// short — and counting them would quarantine a loaded server that is
// still making progress.
func (c *Client) noteRemoteFailure(server string, err error) {
	if spectrarpc.IsDeadline(err) {
		return
	}
	c.health.RecordFailure(server, c.runtime.Now())
}

// nextServer re-plans a failed remote call from the current (post-failure)
// resource snapshot: among the candidate servers not yet tried, it returns
// the one with the highest utility for the operation's decided plan and
// fidelity, or "" when no feasible server remains. This is the decision
// logic of begin_fidelity_op confined to the server dimension, so failover
// lands on the next-best alternative rather than an arbitrary peer.
func (c *Client) nextServer(op *Operation, alt solver.Alternative, params map[string]float64, data string, tried map[string]bool) string {
	var remaining []string
	for _, s := range c.Servers() {
		if !tried[s] {
			remaining = append(remaining, s)
		}
	}
	if len(remaining) == 0 {
		return ""
	}
	snap := c.monitors.Snapshot(c.runtime.Now(), remaining)
	c.applyHealth(snap, remaining)
	est := newEstimator(op, snap, params, data, c.cons, c.wallClock)
	fn := c.utilityFn(op, snap)

	best, bestU := "", 0.0
	for _, s := range remaining {
		cand := alt
		cand.Server = s
		pred := est.Predict(cand)
		if !pred.Feasible {
			continue
		}
		if u := fn.Utility(pred); best == "" || u > bestU {
			best, bestU = s, u
		}
	}
	return best
}

// hostOffers reports whether the client itself can execute the service,
// making local fallback possible.
func (c *Client) hostOffers(service string) bool {
	type hostRuntime interface{ HostService(service string) bool }
	if hr, ok := c.runtime.(hostRuntime); ok {
		return hr.HostService(service)
	}
	return false
}

// failRemote is the shared failover ladder for DoRemoteOp and failed
// DoParallelOps branches: re-execute the call on the next-best server
// (bounded by the failover budget), then fall back to local execution.
// The context carries the operation's remaining latency budget, so every
// rung runs inside the original deadline rather than after it; placements
// already attempted may be pre-seeded via tried (nil starts fresh). Local
// fallback deliberately ignores context expiry — a late local result still
// beats no result, and it costs no further remote waiting. It returns the
// output, where the call finally ran ("" = local), and whether the
// recovery left the decided plan (degraded).
func (x *OpContext) failRemote(ctx context.Context, optype string, payload []byte, failed string, cause error, tried map[string]bool) (out []byte, ranOn string, degraded bool, err error) {
	c := x.client
	service := x.op.spec.Service
	if tried == nil {
		tried = make(map[string]bool, 1)
	}
	tried[failed] = true

	for attempt := 0; attempt < c.failover.budget(); attempt++ {
		if ctx.Err() != nil {
			// The budget ran out mid-ladder; skip straight to the local rung.
			break
		}
		next := c.nextServer(x.op, x.decision.Alternative, x.params, x.data, tried)
		if next == "" {
			break
		}
		tried[next] = true
		out, rep, rerr := x.remoteCallCtx(ctx, next, optype, payload)
		x.account(rep)
		if rerr == nil {
			c.health.RecordSuccess(next)
			x.recordFailover(optype, failed, next, cause)
			return out, next, false, nil
		}
		if !isTransientExec(rerr) {
			return nil, "", false, fmt.Errorf("core: do_remote_op %q on %q (failover): %w", optype, next, rerr)
		}
		c.noteRemoteFailure(next, rerr)
		cause = rerr
		failed = next
	}

	if !c.failover.NoLocalFallback && c.hostOffers(service) {
		sp := x.spans.Start(obs.SpanLocal, -1)
		out, rep, lerr := c.runtime.LocalCall(service, optype, payload)
		x.spans.EndSpan(sp)
		x.account(rep)
		if lerr == nil {
			x.recordFailover(optype, failed, "", cause)
			return out, "", true, nil
		}
		cause = fmt.Errorf("%w (local fallback: %v)", cause, lerr)
	}
	return nil, "", false, fmt.Errorf("core: do_remote_op %q on %q: %w", optype, failed, cause)
}

// recordFailover appends a failover event to the operation's report and
// counts it in the metrics registry.
func (x *OpContext) recordFailover(optype, from, to string, cause error) {
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	x.failovers = append(x.failovers, FailoverEvent{
		OpType: optype,
		From:   from,
		To:     to,
		Cause:  msg,
	})
	x.client.hooks.failoverEvents.Inc()
	if to == "" {
		x.client.hooks.failoverLocal.Inc()
	}
}
