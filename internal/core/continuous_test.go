package core

import (
	"testing"
	"time"

	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
	"spectra/internal/utility"
)

// newViewerSetup builds an image-viewer-style workload with a continuous
// quality fidelity: a remote render returns quality x 400 kB of data, so
// execution time scales linearly with the chosen quality.
func newViewerSetup(t *testing.T) (*SimSetup, *simnet.Link, *Operation) {
	t.Helper()
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    200,
		Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: true,
		Battery:     sim.NewBattery(50_000),
	})
	server := sim.NewMachine(sim.MachineConfig{Name: "srv", SpeedMHz: 1000, OnWallPower: true})
	link := simnet.NewLink(simnet.LinkConfig{
		Name:         "net",
		Latency:      5 * time.Millisecond,
		BandwidthBps: 400_000,
	})
	setup, err := NewSimSetup(SimOptions{
		Host:    host,
		Servers: []SimServer{{Name: "srv", Machine: server, Link: link}},
	})
	if err != nil {
		t.Fatal(err)
	}
	render := func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		// Payload's length encodes quality in permille of 400 kB.
		quality := float64(len(payload)) / 1000
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 50 * quality})
		return make([]byte, int(quality*400_000)), nil
	}
	node, _, _ := setup.Env.Server("srv")
	node.RegisterService("viewer", render)
	setup.Env.Host().RegisterService("viewer", render)

	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "viewer.fetch",
		Service: "viewer",
		Plans:   []PlanSpec{{Name: "remote", UsesServer: true}},
		ContinuousFidelities: []ContinuousFidelity{
			{Name: "quality", Min: 0.2, Max: 1.0, Levels: 5},
		},
		// Views beyond ten seconds are worthless; under half a second they
		// are fully desirable. (A plain 1/T utility would be scale-free in
		// quality here: T grows linearly with q, so q/T is constant.)
		LatencyUtility: utility.DeadlineLatency(500*time.Millisecond, 10*time.Second),
		FidelityUtility: func(fid map[string]string) float64 {
			q, ok := ContinuousValue(fid, "quality")
			if !ok {
				return 0
			}
			return q
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	return setup, link, op
}

// runViewer executes one fetch at the context's chosen quality.
func runViewer(t *testing.T, octx *OpContext) Report {
	t.Helper()
	q, ok := ContinuousValue(octx.Fidelity(), "quality")
	if !ok {
		t.Fatalf("no quality in %v", octx.Fidelity())
	}
	if _, err := octx.DoRemoteOp("render", make([]byte, int(q*1000))); err != nil {
		t.Fatal(err)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestContinuousFidelityEnumeration(t *testing.T) {
	c := ContinuousFidelity{Name: "q", Min: 0, Max: 1, Levels: 5}
	vals := c.values()
	if len(vals) != 5 || vals[0] != "0" || vals[4] != "1" {
		t.Fatalf("values = %v", vals)
	}
	// Reversed bounds are normalized; degenerate Levels default to 5.
	c2 := ContinuousFidelity{Name: "q", Min: 1, Max: 0}
	if got := c2.values(); len(got) != 5 || got[0] != "0" {
		t.Fatalf("normalized values = %v", got)
	}
}

func TestContinuousValueParsing(t *testing.T) {
	fid := map[string]string{"q": "0.75", "bad": "zzz"}
	if v, ok := ContinuousValue(fid, "q"); !ok || v != 0.75 {
		t.Fatalf("parse = (%v,%v)", v, ok)
	}
	if _, ok := ContinuousValue(fid, "bad"); ok {
		t.Fatal("garbage parsed")
	}
	if _, ok := ContinuousValue(fid, "missing"); ok {
		t.Fatal("missing key parsed")
	}
}

func TestModelQuerySplitsContinuous(t *testing.T) {
	op := &Operation{spec: OperationSpec{
		Name:  "op",
		Plans: []PlanSpec{{Name: "p"}},
		Fidelities: []FidelityDimension{
			{Name: "vocab", Values: []string{"full"}},
		},
		ContinuousFidelities: []ContinuousFidelity{{Name: "q", Min: 0, Max: 1}},
		Params:               []string{"len"},
	}}
	features, discrete := op.modelQuery(solver.Alternative{
		Plan:     "p",
		Fidelity: map[string]string{"vocab": "full", "q": "0.5"},
	}, map[string]float64{"len": 3})
	if features["len"] != 3 || features["q"] != 0.5 {
		t.Fatalf("features = %v", features)
	}
	if discrete["vocab"] != "full" || discrete["plan"] != "p" {
		t.Fatalf("discrete = %v", discrete)
	}
	if _, ok := discrete["q"]; ok {
		t.Fatal("continuous dimension leaked into the discrete bins")
	}
}

func TestContinuousQualityAdaptsToBandwidth(t *testing.T) {
	setup, link, op := newViewerSetup(t)

	// Train the endpoints and midpoint; regression interpolates the rest.
	for i := 0; i < 4; i++ {
		for _, q := range []string{"0.2", "0.6", "1"} {
			octx, err := setup.Client.BeginForced(op, solver.Alternative{
				Server:   "srv",
				Plan:     "remote",
				Fidelity: map[string]string{"quality": q},
			}, nil, "")
			if err != nil {
				t.Fatal(err)
			}
			runViewer(t, octx)
		}
	}

	// Fast link: full quality is cheap (1s at q=1), and fidelity utility
	// grows with q, so Spectra picks the maximum.
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	qFast, _ := ContinuousValue(octx.Fidelity(), "quality")
	runViewer(t, octx)
	if qFast != 1 {
		t.Fatalf("fast-link quality = %v, want 1", qFast)
	}

	// Slow link: utility = q x 1/T with T ~ q/bw; dropping quality now
	// pays. Spectra must choose a lower setting.
	link.ScaleBandwidth(1.0 / 16)
	for i := 0; i < 45; i++ {
		setup.Refresh() // flush the passive estimator's window
	}
	octx, err = setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	qSlow, _ := ContinuousValue(octx.Fidelity(), "quality")
	octx.Abort()
	if qSlow >= qFast {
		t.Fatalf("slow-link quality = %v, want below %v", qSlow, qFast)
	}
}

func TestContinuousPredictionInterpolates(t *testing.T) {
	setup, _, op := newViewerSetup(t)
	// Train only the endpoints.
	for i := 0; i < 4; i++ {
		for _, q := range []string{"0.2", "1"} {
			octx, err := setup.Client.BeginForced(op, solver.Alternative{
				Server:   "srv",
				Plan:     "remote",
				Fidelity: map[string]string{"quality": q},
			}, nil, "")
			if err != nil {
				t.Fatal(err)
			}
			runViewer(t, octx)
		}
	}
	// Prediction at an untrained midpoint must land between the endpoint
	// predictions (regression, not binning).
	predictAt := func(q string) time.Duration {
		octx, err := setup.Client.BeginForced(op, solver.Alternative{
			Server:   "srv",
			Plan:     "remote",
			Fidelity: map[string]string{"quality": q},
		}, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		d := octx.Decision().Predicted.Latency
		octx.Abort()
		return d
	}
	lo, mid, hi := predictAt("0.2"), predictAt("0.6"), predictAt("1")
	if !(lo < mid && mid < hi) {
		t.Fatalf("predictions not interpolating: %v %v %v", lo, mid, hi)
	}
	// The midpoint should be near the linear interpolation of endpoints.
	want := (lo + hi) / 2
	diff := mid - want
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.15*float64(want) {
		t.Fatalf("midpoint %v deviates from interpolation %v", mid, want)
	}
}
