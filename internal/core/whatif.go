package core

import (
	"sort"

	"spectra/internal/solver"
	"spectra/internal/utility"
)

// ScoredAlternative is one alternative with Spectra's current prediction
// and utility for it.
type ScoredAlternative struct {
	Alternative solver.Alternative
	Predicted   utility.Prediction
	Utility     float64
}

// EvaluateAlternatives scores every execution alternative for the
// operation under the current resource snapshot, most desirable first —
// Spectra's reasoning laid open. It performs no execution and starts no
// measurement; it is the introspection the validation harness uses to rank
// choices (Figure 8) and a debugging aid for applications.
func (c *Client) EvaluateAlternatives(op *Operation, params map[string]float64, data string) []ScoredAlternative {
	if !op.spec.UsesData {
		data = ""
	}
	servers := c.Servers()
	snap := c.monitors.Snapshot(c.runtime.Now(), servers)
	c.applyHealth(snap, servers)
	est := newEstimator(op, snap, params, data, c.cons, c.wallClock)
	fn := c.utilityFn(op, snap)

	candidates := op.alternatives(servers)
	out := make([]ScoredAlternative, 0, len(candidates))
	for _, alt := range candidates {
		p := est.Predict(alt)
		out = append(out, ScoredAlternative{
			Alternative: alt,
			Predicted:   p,
			Utility:     fn.Utility(p),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Utility > out[j].Utility })
	return out
}
