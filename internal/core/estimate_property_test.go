package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/predict"
	"spectra/internal/solver"
)

// TestEstimatorRobustnessProperty feeds the estimator randomly trained
// models and randomized snapshots: predictions must always be finite,
// non-negative, and feasible plans must stay feasible.
func TestEstimatorRobustnessProperty(t *testing.T) {
	f := func(samples []uint16, availMHz, bwKBps uint16, lat uint8) bool {
		op := &Operation{
			spec: OperationSpec{
				Name:    "prop.op",
				Service: "svc",
				Plans: []PlanSpec{
					{Name: "local"},
					{Name: "remote", UsesServer: true},
				},
			},
			models: newOpModels(nil, ModelOptions{}, nil),
		}
		op.fidelityCombos = fidelityCombos(nil)

		for i, v := range samples {
			plan := "local"
			if i%2 == 1 {
				plan = "remote"
			}
			op.models.observe(
				predict.Record{Discrete: map[string]string{"plan": plan}},
				phaseUsage{localSeconds: float64(v) / 100},
				observedUsage{
					localMegacycles:  float64(v),
					remoteMegacycles: float64(v) / 2,
					netBytes:         float64(v) * 10,
					rpcs:             1,
					energyJoules:     float64(v) / 50,
					energyValid:      true,
				})
		}

		snap := monitor.NewSnapshot(time.Unix(0, 0))
		snap.LocalCPU = monitor.CPUAvail{
			AvailMHz: float64(availMHz%1000) + 1,
			SpeedMHz: 1000,
			Known:    true,
		}
		snap.LocalCache = monitor.CacheAvail{Known: true, FetchRateBps: 1000}
		snap.Network["srv"] = monitor.NetAvail{
			BandwidthBps: float64(bwKBps)*10 + 1,
			Latency:      time.Duration(lat) * time.Millisecond,
			Reachable:    true,
			Known:        true,
		}
		snap.RemoteCPU["srv"] = monitor.CPUAvail{AvailMHz: 500, SpeedMHz: 500, Known: true}
		snap.RemoteCache["srv"] = monitor.CacheAvail{Known: true, FetchRateBps: 1000}
		snap.Services["srv"] = []string{"svc"}

		est := newEstimator(op, snap, nil, "", nil, nil)
		for _, alt := range []solver.Alternative{
			{Plan: "local"},
			{Server: "srv", Plan: "remote"},
		} {
			p := est.Predict(alt)
			if !p.Feasible {
				return false
			}
			if p.Latency < 0 || p.EnergyJoules < 0 {
				return false
			}
			if math.IsNaN(p.Latency.Seconds()) || math.IsNaN(p.EnergyJoules) ||
				math.IsInf(p.EnergyJoules, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
