package core

import (
	"errors"
	"sync"
)

// ServiceLoop adapts the paper's service programming model (Figure 2) to
// Go: a service main loop calls GetOp to block for the next request,
// processes it, and calls Return on the request — the service_init /
// service_getop / service_retop cycle. The loop's Handler plugs into
// Node.RegisterService or Server.Register.
//
//	loop := core.NewServiceLoop()
//	server.Register("myservice", loop.Handler())
//	go func() {
//		for {
//			op, ok := loop.GetOp()       // service_getop
//			if !ok {
//				return
//			}
//			out, err := handle(op)
//			op.Return(out, err)          // service_retop
//		}
//	}()
type ServiceLoop struct {
	reqs chan *ServiceRequest

	mu     sync.Mutex
	nextID uint64
	closed bool
	done   chan struct{}
}

// ServiceRequest is one operation request delivered to a service loop.
type ServiceRequest struct {
	// ID uniquely identifies the request within the loop.
	ID uint64
	// OpType is the application-specific operation type; services handling
	// more than one type multiplex on it.
	OpType string
	// Payload is the application-specific input data.
	Payload []byte
	// Ctx meters the service's resource consumption.
	Ctx *ServiceContext

	reply chan serviceReply
}

type serviceReply struct {
	out []byte
	err error
}

// Return completes the request (service_retop). Calling Return twice is a
// no-op.
func (r *ServiceRequest) Return(out []byte, err error) {
	select {
	case r.reply <- serviceReply{out: out, err: err}:
	default:
	}
}

// errLoopClosed is returned for requests arriving after Close.
var errLoopClosed = errors.New("core: service loop closed")

// NewServiceLoop returns a ready loop (service_init).
func NewServiceLoop() *ServiceLoop {
	return &ServiceLoop{
		reqs: make(chan *ServiceRequest),
		done: make(chan struct{}),
	}
}

// Handler returns the ServiceFunc that feeds this loop.
func (l *ServiceLoop) Handler() ServiceFunc {
	return func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil, errLoopClosed
		}
		l.nextID++
		req := &ServiceRequest{
			ID:      l.nextID,
			OpType:  optype,
			Payload: payload,
			Ctx:     ctx,
			reply:   make(chan serviceReply, 1),
		}
		l.mu.Unlock()

		select {
		case l.reqs <- req:
		case <-l.done:
			return nil, errLoopClosed
		}
		select {
		case rep := <-req.reply:
			return rep.out, rep.err
		case <-l.done:
			return nil, errLoopClosed
		}
	}
}

// GetOp blocks until a request arrives (service_getop). ok is false once
// the loop is closed.
func (l *ServiceLoop) GetOp() (*ServiceRequest, bool) {
	select {
	case req := <-l.reqs:
		return req, true
	case <-l.done:
		return nil, false
	}
}

// Close shuts the loop down; blocked GetOp and Handler calls return.
func (l *ServiceLoop) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.done)
}
