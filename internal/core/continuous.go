package core

import (
	"strconv"

	"spectra/internal/solver"
)

// ContinuousFidelity is a continuous fidelity dimension (paper §3.4:
// "Fidelities and input parameters may be either discrete or continuous").
// Unlike discrete dimensions, continuous ones are not binned: the demand
// models regress on the numeric value, so predictions interpolate between
// observed settings. The solver searches Levels evenly spaced settings in
// [Min, Max].
type ContinuousFidelity struct {
	Name string
	Min  float64
	Max  float64
	// Levels is the number of settings the solver considers; values below
	// 2 select 5.
	Levels int
}

// values enumerates the dimension's search grid.
func (c ContinuousFidelity) values() []string {
	levels := c.Levels
	if levels < 2 {
		levels = 5
	}
	lo, hi := c.Min, c.Max
	if hi < lo {
		lo, hi = hi, lo
	}
	out := make([]string, levels)
	for i := 0; i < levels; i++ {
		v := lo + (hi-lo)*float64(i)/float64(levels-1)
		out[i] = FormatContinuous(v)
	}
	return out
}

// FormatContinuous renders a continuous fidelity value canonically.
func FormatContinuous(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}

// ContinuousValue parses a continuous fidelity setting from a fidelity
// assignment, for use in application utility and execution code.
func ContinuousValue(fidelity map[string]string, name string) (float64, bool) {
	s, ok := fidelity[name]
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// continuousNames returns the operation's continuous dimension names.
func (s *OperationSpec) continuousNames() map[string]bool {
	if len(s.ContinuousFidelities) == 0 {
		return nil
	}
	out := make(map[string]bool, len(s.ContinuousFidelities))
	for _, c := range s.ContinuousFidelities {
		out[c.Name] = true
	}
	return out
}

// modelFeatureNames lists the regression features of the operation's
// demand models: declared input parameters plus continuous fidelity
// dimensions.
func (s *OperationSpec) modelFeatureNames() []string {
	out := append([]string(nil), s.Params...)
	for _, c := range s.ContinuousFidelities {
		out = append(out, c.Name)
	}
	return out
}

// modelQuery splits an alternative into the demand models' inputs: the
// regression features (input parameters + continuous fidelity values) and
// the discrete assignment (plan + discrete fidelity dimensions).
func (o *Operation) modelQuery(alt solver.Alternative, params map[string]float64) (map[string]float64, map[string]string) {
	cont := o.spec.continuousNames()

	discrete := make(map[string]string, len(alt.Fidelity)+1)
	features := params
	if len(cont) > 0 {
		features = make(map[string]float64, len(params)+len(cont))
		for k, v := range params {
			features[k] = v
		}
	}
	for k, v := range alt.Fidelity {
		if cont[k] {
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				features[k] = f
				continue
			}
		}
		discrete[k] = v
	}
	discrete["plan"] = alt.Plan
	return features, discrete
}
