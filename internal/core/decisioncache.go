package core

import (
	"container/list"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/obs"
)

// Decision-cache defaults.
const (
	// DefaultCacheTTL is the hard entry lifetime: even a perfectly stable
	// resource picture re-deliberates this often, bounding how long a
	// wrong-but-undetected binding can persist.
	DefaultCacheTTL = 2 * time.Second
	// DefaultCacheDriftLevels tolerates one quantization level (√2, ~41%)
	// of availability movement before re-solving.
	DefaultCacheDriftLevels = 1
	// DefaultCacheAccuracyRegression invalidates entries whose operation's
	// rolling prediction error grew by more than this since fill time.
	DefaultCacheAccuracyRegression = 0.15
	// DefaultCacheMaxEntries bounds the cache (LRU eviction).
	DefaultCacheMaxEntries = 512
)

// CacheOptions tunes the placement-decision cache ("virtual stubs", after
// Dhomeja et al.'s transparent caching of resolved remote-execution
// bindings): BeginFidelityOp reuses a previously solved Decision when the
// operation, its input-parameter bucket, and the coarsened resource
// picture match a live cached entry, skipping prediction and solver search
// entirely. The cache is off unless Enabled is set: reusing a decision is
// only sound within the invalidation rules below, and deterministic
// replays of the paper's figures want every Begin to deliberate.
//
// Forced Begins and Begins with a trace sink attached always bypass the
// cache, so decision traces record a complete solver deliberation.
type CacheOptions struct {
	// Enabled turns the cache on.
	Enabled bool
	// TTL is the hard entry lifetime, measured on the runtime clock
	// (virtual time in simulations); 0 selects DefaultCacheTTL.
	TTL time.Duration
	// DriftLevels is how many quantization levels (a factor of √2 each)
	// any coarse resource availability may move from the cached
	// fingerprint before the entry is invalidated. 0 selects
	// DefaultCacheDriftLevels; negative tolerates no drift at all.
	// Health-verdict changes (a server dying, healing, or leaving the
	// candidate set; wall power flipping) invalidate regardless.
	DriftLevels int
	// AccuracyRegression invalidates an entry when any resource's rolling
	// relative prediction error (obs.AccuracyTracker.RelativeError) has
	// grown by more than this since the entry was filled — the predictor
	// the cached decision was based on is no longer trustworthy. 0 selects
	// DefaultCacheAccuracyRegression; negative disables the check.
	AccuracyRegression float64
	// MaxEntries bounds the cache; least-recently-used entries are evicted
	// beyond it. 0 selects DefaultCacheMaxEntries.
	MaxEntries int
}

func (o CacheOptions) ttl() time.Duration {
	if o.TTL <= 0 {
		return DefaultCacheTTL
	}
	return o.TTL
}

func (o CacheOptions) driftLevels() int {
	switch {
	case o.DriftLevels < 0:
		return 0
	case o.DriftLevels == 0:
		return DefaultCacheDriftLevels
	default:
		return o.DriftLevels
	}
}

func (o CacheOptions) accuracyRegression() float64 {
	if o.AccuracyRegression == 0 {
		return DefaultCacheAccuracyRegression
	}
	return o.AccuracyRegression
}

func (o CacheOptions) maxEntries() int {
	if o.MaxEntries <= 0 {
		return DefaultCacheMaxEntries
	}
	return o.MaxEntries
}

// CacheStats is a point-in-time summary of decision-cache behaviour,
// broken out by invalidation trigger so tests and operators can tell a
// drifting fleet from a regressing predictor.
type CacheStats struct {
	Hits, Misses, Stores, Bypasses uint64
	// Invalidations is the sum of the per-trigger counts below plus
	// outcome-driven drops (End reporting a degraded or failed-over
	// execution of a cached binding).
	Invalidations   uint64
	InvalidTTL      uint64
	InvalidDrift    uint64
	InvalidHealth   uint64
	InvalidAccuracy uint64
	InvalidOutcome  uint64
	Evictions       uint64
	Entries         int
}

// cacheAccuracyResources are the accuracy-tracker streams consulted by the
// regression check, in the order they are fed at End.
var cacheAccuracyResources = []string{
	obs.ResCPULocal, obs.ResCPURemote, obs.ResNetBytes,
	obs.ResNetRPCs, obs.ResLatency, obs.ResEnergy,
}

// cacheEntry is one cached placement decision.
type cacheEntry struct {
	key      string
	coarse   monitor.CoarseSnapshot
	decision Decision
	demand   obs.ResourceDemand
	// accAtFill is the rolling relative error per resource at fill time
	// (absent when the tracker had no stable estimate — treated as zero,
	// so an error estimate that only becomes visible after fill still
	// triggers the regression check).
	accAtFill map[string]float64
	filledAt  time.Time
	hits      uint64
}

// decisionCache is the client's placement-decision cache. All state is
// guarded by mu; lookups consult the accuracy tracker through a caller-
// provided probe, which takes the tracker's own lock — the tracker never
// calls back into the cache, so the order is acyclic.
type decisionCache struct {
	mu    sync.Mutex
	opts  CacheOptions
	lru   *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
	stats CacheStats

	// Pre-resolved metric handles; nil handles are no-ops.
	mHits, mMisses, mBypass, mInvalid *obs.Counter
	mEntries                          *obs.Gauge
}

func newDecisionCache(opts CacheOptions, o *obs.Observer) *decisionCache {
	dc := &decisionCache{
		opts:  opts,
		lru:   list.New(),
		byKey: make(map[string]*list.Element),
	}
	if o != nil && o.Registry != nil {
		dc.mHits = o.Registry.Counter(obs.MDecisionCacheHits)
		dc.mMisses = o.Registry.Counter(obs.MDecisionCacheMisses)
		dc.mBypass = o.Registry.Counter(obs.MDecisionCacheBypass)
		dc.mInvalid = o.Registry.Counter(obs.MDecisionCacheInvalidations)
		dc.mEntries = o.Registry.Gauge(obs.MDecisionCacheEntries)
	}
	return dc
}

// bypass counts a Begin that skipped the cache by design (forced, traced,
// or dirty consistency state).
func (dc *decisionCache) bypass() {
	dc.mu.Lock()
	dc.stats.Bypasses++
	dc.mu.Unlock()
	dc.mBypass.Inc()
}

// lookup returns the cached decision for key when it is still valid
// against the live coarse snapshot, the clock, and the accuracy tracker.
// An invalid entry is dropped (the caller's fresh solve will refill it).
func (dc *decisionCache) lookup(key string, live monitor.CoarseSnapshot, now time.Time, accErr func(resource string) (float64, bool)) (Decision, obs.ResourceDemand, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	el, ok := dc.byKey[key]
	if !ok {
		dc.stats.Misses++
		dc.mMisses.Inc()
		return Decision{}, obs.ResourceDemand{}, false
	}
	e := el.Value.(*cacheEntry)
	if age := now.Sub(e.filledAt); age < 0 || age >= dc.opts.ttl() {
		return dc.invalidateLocked(el, &dc.stats.InvalidTTL)
	}
	maxLevels, healthChanged := e.coarse.Drift(live)
	if healthChanged {
		return dc.invalidateLocked(el, &dc.stats.InvalidHealth)
	}
	if maxLevels > dc.opts.driftLevels() {
		return dc.invalidateLocked(el, &dc.stats.InvalidDrift)
	}
	if reg := dc.opts.accuracyRegression(); reg >= 0 && accErr != nil {
		for _, res := range cacheAccuracyResources {
			cur, ok := accErr(res)
			if !ok {
				continue
			}
			if cur-e.accAtFill[res] > reg {
				return dc.invalidateLocked(el, &dc.stats.InvalidAccuracy)
			}
		}
	}
	e.hits++
	dc.lru.MoveToFront(el)
	dc.stats.Hits++
	dc.mHits.Inc()
	return e.decision, e.demand, true
}

// invalidateLocked drops an entry, attributing the invalidation to the
// given trigger counter, and reports the lookup as a miss.
func (dc *decisionCache) invalidateLocked(el *list.Element, trigger *uint64) (Decision, obs.ResourceDemand, bool) {
	dc.removeLocked(el)
	*trigger++
	dc.stats.Invalidations++
	dc.stats.Misses++
	dc.mInvalid.Inc()
	dc.mMisses.Inc()
	return Decision{}, obs.ResourceDemand{}, false
}

func (dc *decisionCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	dc.lru.Remove(el)
	delete(dc.byKey, e.key)
	dc.mEntries.Set(float64(dc.lru.Len()))
}

// store fills (or refreshes) the entry for key with a freshly solved
// decision and the coarse picture it was solved under.
func (dc *decisionCache) store(key string, coarse monitor.CoarseSnapshot, dec Decision, demand obs.ResourceDemand, now time.Time, accErr func(resource string) (float64, bool)) {
	var accAtFill map[string]float64
	if accErr != nil {
		for _, res := range cacheAccuracyResources {
			if cur, ok := accErr(res); ok {
				if accAtFill == nil {
					accAtFill = make(map[string]float64, len(cacheAccuracyResources))
				}
				accAtFill[res] = cur
			}
		}
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if el, ok := dc.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		e.coarse, e.decision, e.demand = coarse, dec, demand
		e.accAtFill, e.filledAt = accAtFill, now
		dc.lru.MoveToFront(el)
		dc.stats.Stores++
		return
	}
	el := dc.lru.PushFront(&cacheEntry{
		key:       key,
		coarse:    coarse,
		decision:  dec,
		demand:    demand,
		accAtFill: accAtFill,
		filledAt:  now,
	})
	dc.byKey[key] = el
	dc.stats.Stores++
	for dc.lru.Len() > dc.opts.maxEntries() {
		dc.removeLocked(dc.lru.Back())
		dc.stats.Evictions++
	}
	dc.mEntries.Set(float64(dc.lru.Len()))
}

// noteOutcome feeds an operation's outcome back into its entry: a degraded
// or failed-over execution proves the cached binding wrong right now, so
// the entry is dropped and the next Begin re-solves.
func (dc *decisionCache) noteOutcome(key string, bad bool) {
	if !bad {
		return
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	el, ok := dc.byKey[key]
	if !ok {
		return
	}
	dc.removeLocked(el)
	dc.stats.InvalidOutcome++
	dc.stats.Invalidations++
	dc.mInvalid.Inc()
}

// snapshot exports the counters.
func (dc *decisionCache) snapshot() CacheStats {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	s := dc.stats
	s.Entries = dc.lru.Len()
	return s
}

// DecisionCacheStats reports the decision cache's counters; the zero value
// when the cache is disabled.
func (c *Client) DecisionCacheStats() CacheStats {
	if c.dcache == nil {
		return CacheStats{}
	}
	return c.dcache.snapshot()
}

// cacheBeginKey derives the cache identity of one Begin: operation name,
// decision-space shape, bucketed input parameters, data object, and the
// candidate server set. The coarse resource picture is deliberately NOT
// part of the key — it is stored with the entry and compared with drift
// tolerance at lookup, so a modest availability wobble refreshes the entry
// in place instead of growing a new one per fingerprint.
func cacheBeginKey(op *Operation, params map[string]float64, data string, servers []string) string {
	var b strings.Builder
	b.WriteString(op.Name())
	b.WriteByte('\x00')
	b.WriteString(op.shapeKey)
	b.WriteByte('\x00')
	b.WriteString(paramBucketKey(params))
	b.WriteByte('\x00')
	b.WriteString(data)
	b.WriteByte('\x00')
	b.WriteString(strings.Join(servers, ","))
	return b.String()
}

// paramBucketKey renders input parameters bucketed on a logarithmic scale:
// values within ~41% of each other share a bucket, mirroring the snapshot
// coarsening, because the demand models are smooth in their parameters.
func paramBucketKey(params map[string]float64) string {
	if len(params) == 0 {
		return ""
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(paramLevel(params[name])))
	}
	return b.String()
}

// paramLevel buckets one parameter value: level = round(log2(1+|v|) * 2),
// signed. The +1 keeps small magnitudes (including zero) finite and in a
// shared bucket.
func paramLevel(v float64) int {
	neg := v < 0
	if neg {
		v = -v
	}
	l := int(math.Round(math.Log2(1+v) * 2))
	if neg {
		return -l
	}
	return l
}
