package core

import (
	"testing"
	"time"

	"spectra/internal/coda"
	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
)

// newParallelSetup builds a client and two equal servers for parallel
// execution tests.
func newParallelSetup(t *testing.T) *SimSetup {
	t.Helper()
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: true,
		Battery:     sim.NewBattery(50_000),
	})
	mkServer := func(name string) SimServer {
		return SimServer{
			Name: name,
			Machine: sim.NewMachine(sim.MachineConfig{
				Name: name, SpeedMHz: 1000, OnWallPower: true,
			}),
			Link: simnet.NewLink(simnet.LinkConfig{
				Name: "lan-" + name, Latency: time.Millisecond, BandwidthBps: 1_000_000,
			}),
		}
	}
	setup, err := NewSimSetup(SimOptions{
		Host:    host,
		Servers: []SimServer{mkServer("s1"), mkServer("s2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	work := func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 1000}) // 1s per branch
		return []byte("ok"), nil
	}
	setup.Env.Host().RegisterService("toy", work)
	for _, s := range []string{"s1", "s2"} {
		node, _, _ := setup.Env.Server(s)
		node.RegisterService("toy", work)
	}
	return setup
}

func parallelSpec() OperationSpec {
	return OperationSpec{
		Name:    "toy.parallel",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	}
}

func TestParallelExecutionOverlaps(t *testing.T) {
	setup := newParallelSetup(t)
	op, err := setup.Client.RegisterFidelity(parallelSpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()

	// Sequential: two branches on the same server take ~2 s.
	seq, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := seq.DoRemoteOp("run", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	seqRep, err := seq.End()
	if err != nil {
		t.Fatal(err)
	}
	if seqRep.Elapsed < 2*time.Second {
		t.Fatalf("sequential elapsed = %v, want >= 2s", seqRep.Elapsed)
	}

	// Parallel: the same two branches on different servers take ~1 s.
	par, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := par.DoParallelOps([]ParallelCall{
		{Server: "s1", OpType: "run", Payload: []byte("x")},
		{Server: "s2", OpType: "run", Payload: []byte("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || string(outs[0]) != "ok" || string(outs[1]) != "ok" {
		t.Fatalf("outputs = %q", outs)
	}
	parRep, err := par.End()
	if err != nil {
		t.Fatal(err)
	}
	if parRep.Elapsed >= seqRep.Elapsed {
		t.Fatalf("parallel %v should beat sequential %v", parRep.Elapsed, seqRep.Elapsed)
	}
	if parRep.Elapsed > 1200*time.Millisecond {
		t.Fatalf("parallel elapsed = %v, want ~1s", parRep.Elapsed)
	}
	// Usage still accounts both branches.
	if parRep.Usage.RemoteMegacycles != 2000 {
		t.Fatalf("remote megacycles = %v, want 2000", parRep.Usage.RemoteMegacycles)
	}
	if parRep.Usage.RPCs != 2 {
		t.Fatalf("rpcs = %d, want 2", parRep.Usage.RPCs)
	}
}

func TestParallelDefaultsToDecidedServer(t *testing.T) {
	setup := newParallelSetup(t)
	op, err := setup.Client.RegisterFidelity(parallelSpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s2", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := octx.DoParallelOps([]ParallelCall{{OpType: "run", Payload: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outputs = %d", len(outs))
	}
	octx.Abort()
}

func TestParallelErrors(t *testing.T) {
	setup := newParallelSetup(t)
	op, err := setup.Client.RegisterFidelity(parallelSpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := octx.DoParallelOps(nil); err == nil {
		t.Fatal("empty call list should fail")
	}
	if _, err := octx.DoParallelOps([]ParallelCall{{Server: "ghost", OpType: "run"}}); err == nil {
		t.Fatal("unknown server should fail")
	}
	// Local plan: no decided server and none specified.
	local, err := setup.Client.BeginForced(op, solver.Alternative{Plan: "local"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.DoParallelOps([]ParallelCall{{OpType: "run"}}); err == nil {
		t.Fatal("parallel call without server should fail")
	}
	local.Abort()
	octx.Abort()
	if _, err := octx.DoParallelOps([]ParallelCall{{Server: "s1", OpType: "run"}}); err == nil {
		t.Fatal("parallel call after end should fail")
	}
}

func TestParallelLiveRuntime(t *testing.T) {
	// Two real TCP servers; parallel branches genuinely overlap.
	addr1 := startLiveServer(t, "p1", 1000)
	addr2 := startLiveServer(t, "p2", 1000)
	setup := newLiveClient(t, map[string]string{"p1": addr1, "p2": addr2})

	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "toy.parlive",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()

	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "p1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	outs, err := octx.DoParallelOps([]ParallelCall{
		{Server: "p1", OpType: "run", Payload: []byte("a")},
		{Server: "p2", OpType: "run", Payload: []byte("b")},
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outputs = %d", len(outs))
	}
	// Each branch computes 30 ms; overlapped execution must finish well
	// under the 60 ms a sequential run would need.
	if elapsed > 55*time.Millisecond {
		t.Fatalf("parallel live elapsed = %v, want < 55ms", elapsed)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Usage.RemoteMegacycles != 60 {
		t.Fatalf("remote megacycles = %v, want 60", rep.Usage.RemoteMegacycles)
	}
}

// startSlowServer hosts the toy service on a server whose handler takes a
// fixed slab of real time regardless of any budget — a stand-in for a
// stalled-but-reachable server, bounded so a deadline regression fails an
// elapsed-time assertion instead of hanging the test run.
func startSlowServer(t *testing.T, name string, delay time.Duration) string {
	t.Helper()
	machine := sim.NewMachine(sim.MachineConfig{Name: name, SpeedMHz: 1000, OnWallPower: true})
	node := NewNode(machine, coda.NewClient(name, coda.NewFileServer(), 0), nil)
	srv := NewServer(name, node, sim.RealClock{})
	srv.Register("toy", func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		time.Sleep(delay)
		return []byte("late"), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestParallelFailoverRespectsBudget is the regression test for the
// deadline escape ctxflow flagged in DoParallelOps: the parallel branches
// and the failover ladder of a failed branch both used context.Background,
// so a branch landing on a stalled server waited out the stall instead of
// the operation's budget. Here the only server stalls for 2s while the
// budget is 200ms: the branch must be cancelled at the budget, the ladder
// (with no surviving server) must shed to the local fallback, and the
// whole operation must complete degraded well under the stall.
func TestParallelFailoverRespectsBudget(t *testing.T) {
	const stall = 2 * time.Second
	slowAddr := startSlowServer(t, "slow", stall)

	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    1000,
		Power:       sim.PowerModel{IdleW: 2, BusyW: 10, NetW: 3},
		OnWallPower: true,
		Battery:     sim.NewBattery(100_000),
	})
	setup, err := NewLiveSetup(LiveOptions{
		Host:    host,
		Servers: map[string]string{"slow": slowAddr},
		Deadline: DeadlineOptions{
			Floor:   200 * time.Millisecond,
			Ceiling: 200 * time.Millisecond,
			NoHedge: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { setup.Runtime.Close() })
	setup.Host.RegisterService("toy", liveWork)

	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "toy.parbudget",
		Service: "toy",
		Plans:   []PlanSpec{{Name: "local"}, {Name: "remote", UsesServer: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()

	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "slow", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	outs, err := octx.DoParallelOps([]ParallelCall{
		{Server: "slow", OpType: "run", Payload: []byte("x")},
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budget-bounded parallel op failed instead of falling back: %v", err)
	}
	if len(outs) != 1 || string(outs[0]) != "done" {
		t.Fatalf("fallback outputs = %q, want the local result", outs)
	}
	// The branch must end at the 200ms budget (plus local execution and
	// scheduling slack), never at the server's 2s stall.
	if elapsed >= stall {
		t.Fatalf("parallel op outwaited its 200ms budget: %v", elapsed)
	}
	if elapsed >= 1500*time.Millisecond {
		t.Fatalf("parallel failover took %v; the budget must bound the branch and the ladder", elapsed)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("local fallback must mark the report degraded")
	}
}
