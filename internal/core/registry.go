package core

import (
	"sort"
	"sync"
	"time"

	"spectra/internal/sim"
)

// AnnounceRegistry is a service-discovery registry in the spirit of the
// discovery protocols the paper cites (INS, SLP): servers announce
// themselves periodically and disappear from the candidate list when their
// announcements expire. The paper designed Spectra for dynamic discovery
// but shipped static configuration (§3.2); both are supported here —
// configure static servers in Config.Servers and plug an AnnounceRegistry
// into Config.Registry for the dynamic ones.
type AnnounceRegistry struct {
	mu sync.Mutex

	clock   sim.Clock
	ttl     time.Duration
	entries map[string]time.Time // server -> expiry
}

var _ Registry = (*AnnounceRegistry)(nil)

// NewAnnounceRegistry returns a registry whose announcements live for ttl.
func NewAnnounceRegistry(clock sim.Clock, ttl time.Duration) *AnnounceRegistry {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return &AnnounceRegistry{
		clock:   clock,
		ttl:     ttl,
		entries: make(map[string]time.Time),
	}
}

// Announce records (or refreshes) a server's presence.
func (r *AnnounceRegistry) Announce(server string) {
	if server == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[server] = r.clock.Now().Add(r.ttl)
}

// Withdraw removes a server immediately.
func (r *AnnounceRegistry) Withdraw(server string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, server)
}

// Discover implements Registry: every server with a live announcement, in
// deterministic order. Expired entries are reaped.
func (r *AnnounceRegistry) Discover() []string {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for server, expiry := range r.entries {
		if now.After(expiry) {
			delete(r.entries, server)
			continue
		}
		out = append(out, server)
	}
	sort.Strings(out)
	return out
}
