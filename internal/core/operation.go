package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"spectra/internal/obs"
	"spectra/internal/solver"
	"spectra/internal/utility"
)

// FilePlacement says on which machine an execution plan's file accesses
// happen, which determines whose cache state matters and whether data
// consistency must be enforced before execution.
type FilePlacement int

// File placements.
const (
	// FilesLocal means the plan reads files on the client.
	FilesLocal FilePlacement = iota + 1
	// FilesRemote means the plan reads files on the chosen server, so
	// dirty client data it may read must be reintegrated first.
	FilesRemote
)

// PlanSpec describes one execution plan: a method of partitioning the
// operation between local and remote machines.
type PlanSpec struct {
	// Name identifies the plan (e.g. "local", "hybrid", "remote").
	Name string
	// UsesServer is true when the plan executes anything remotely; such
	// plans are instantiated once per candidate server.
	UsesServer bool
	// Files is an advisory hint about where the plan's file accesses
	// happen. Spectra learns actual per-file access locations from
	// observation; the hint documents the application's intent.
	Files FilePlacement
}

// FidelityDimension is one discrete fidelity knob.
type FidelityDimension struct {
	Name   string
	Values []string
}

// OperationSpec statically describes an operation an application registers
// with Spectra (the register_fidelity call, paper §3.1).
type OperationSpec struct {
	// Name identifies the operation, e.g. "janus.recognize".
	Name string
	// Service is the Spectra service that executes the operation's remote
	// components.
	Service string
	// Plans are the possible execution plans. At least one is required.
	Plans []PlanSpec
	// Fidelities are the discrete fidelity dimensions. May be empty.
	Fidelities []FidelityDimension
	// ContinuousFidelities are continuous fidelity dimensions, modeled by
	// regression rather than binning. May be empty.
	ContinuousFidelities []ContinuousFidelity
	// Params names the operation's input parameters: continuous variables
	// that significantly affect operation complexity.
	Params []string
	// LatencyUtility expresses the desirability of execution times; nil
	// selects 1/T.
	LatencyUtility utility.LatencyDesirability
	// FidelityUtility returns the desirability of a fidelity assignment;
	// nil values every fidelity at 1.
	FidelityUtility func(fidelity map[string]string) float64
	// Valid optionally prunes meaningless (plan, fidelity) combinations.
	Valid func(plan string, fidelity map[string]string) bool
	// Predictors optionally replaces the default numeric demand
	// predictors with application-specific ones.
	Predictors *CustomPredictors
	// Utility optionally replaces the default utility function entirely
	// (paper §3.6: "applications may override the default with an
	// application-specific implementation"). When set, LatencyUtility and
	// FidelityUtility only affect the prediction fields, not the score.
	Utility utility.Function
	// UsesData is true when operations name a data object (e.g. the Latex
	// input document), enabling data-specific demand models.
	UsesData bool
}

func (s *OperationSpec) validate() error {
	if s.Name == "" {
		return errors.New("core: operation needs a name")
	}
	if len(s.Plans) == 0 {
		return fmt.Errorf("core: operation %q needs at least one plan", s.Name)
	}
	seen := make(map[string]bool, len(s.Plans))
	for _, p := range s.Plans {
		if p.Name == "" {
			return fmt.Errorf("core: operation %q has an unnamed plan", s.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("core: operation %q has duplicate plan %q", s.Name, p.Name)
		}
		seen[p.Name] = true
	}
	for _, f := range s.Fidelities {
		if f.Name == "" || len(f.Values) == 0 {
			return fmt.Errorf("core: operation %q has a malformed fidelity dimension", s.Name)
		}
	}
	for _, c := range s.ContinuousFidelities {
		if c.Name == "" {
			return fmt.Errorf("core: operation %q has an unnamed continuous fidelity", s.Name)
		}
	}
	return nil
}

// decisionShapeKey renders the shape of the decision space the solver
// searches: every plan (with its server use) and every fidelity dimension
// with its value list, in declaration order.
func (s *OperationSpec) decisionShapeKey() string {
	var b strings.Builder
	for _, p := range s.Plans {
		b.WriteString(p.Name)
		if p.UsesServer {
			b.WriteByte('@')
		}
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, d := range s.allFidelityDimensions() {
		b.WriteString(d.Name)
		b.WriteByte('=')
		b.WriteString(strings.Join(d.Values, ","))
		b.WriteByte(';')
	}
	return b.String()
}

// allFidelityDimensions renders discrete and (discretized) continuous
// dimensions uniformly for enumeration.
func (s *OperationSpec) allFidelityDimensions() []FidelityDimension {
	dims := append([]FidelityDimension(nil), s.Fidelities...)
	for _, c := range s.ContinuousFidelities {
		dims = append(dims, FidelityDimension{Name: c.Name, Values: c.values()})
	}
	return dims
}

// fidelityCombos enumerates the cartesian product of fidelity dimensions.
// With no dimensions it yields a single empty assignment.
func fidelityCombos(dims []FidelityDimension) []map[string]string {
	combos := []map[string]string{{}}
	for _, dim := range dims {
		next := make([]map[string]string, 0, len(combos)*len(dim.Values))
		for _, base := range combos {
			for _, v := range dim.Values {
				m := make(map[string]string, len(base)+1)
				for k, bv := range base {
					m[k] = bv
				}
				m[dim.Name] = v
				next = append(next, m)
			}
		}
		combos = next
	}
	return combos
}

// Operation is a registered operation.
type Operation struct {
	client *Client
	spec   OperationSpec
	models *opModels
	// acc feeds per-resource prediction error to the observer; nil (a
	// no-op handle) when observability is off.
	acc *obs.OpAccuracy

	fidelityCombos []map[string]string
	// shapeKey fingerprints the decision space's shape (plans and fidelity
	// dimensions); part of the decision cache's key, so a cached decision is
	// never replayed against a differently shaped space.
	shapeKey string
	// registerDuration is the wall-clock cost of register_fidelity,
	// reported in the Figure-10 overhead table.
	registerDuration time.Duration
}

// RegisterDuration returns the wall-clock cost of registering the
// operation.
func (o *Operation) RegisterDuration() time.Duration { return o.registerDuration }

// Spec returns the operation's registration.
func (o *Operation) Spec() OperationSpec { return o.spec }

// Name returns the operation name.
func (o *Operation) Name() string { return o.spec.Name }

// alternatives enumerates the decision space given the usable servers.
// Plans that use a server appear once per server; purely local plans once.
func (o *Operation) alternatives(servers []string) []solver.Alternative {
	var out []solver.Alternative
	for _, plan := range o.spec.Plans {
		targets := []string{""}
		if plan.UsesServer {
			if len(servers) == 0 {
				continue
			}
			targets = servers
		}
		for _, server := range targets {
			for _, fid := range o.fidelityCombos {
				if o.spec.Valid != nil && !o.spec.Valid(plan.Name, fid) {
					continue
				}
				out = append(out, solver.Alternative{
					Server:   server,
					Plan:     plan.Name,
					Fidelity: fid,
				})
			}
		}
	}
	return out
}

// planSpec finds a plan by name.
func (o *Operation) planSpec(name string) (PlanSpec, bool) {
	for _, p := range o.spec.Plans {
		if p.Name == name {
			return p, true
		}
	}
	return PlanSpec{}, false
}

// fidelityValue returns the desirability of a fidelity assignment.
func (o *Operation) fidelityValue(fid map[string]string) float64 {
	if o.spec.FidelityUtility == nil {
		return 1
	}
	return o.spec.FidelityUtility(fid)
}
