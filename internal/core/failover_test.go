package core

import (
	"net"
	"testing"
	"time"

	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
	"spectra/internal/wire"
)

// newFailoverSetup builds a client and two equal servers, with the given
// failover and health tuning, hosting "toy" everywhere so every rung of
// the recovery ladder is available.
func newFailoverSetup(t *testing.T, fo FailoverOptions, h HealthOptions) *SimSetup {
	t.Helper()
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: true,
		Battery:     sim.NewBattery(50_000),
	})
	mkServer := func(name string) SimServer {
		return SimServer{
			Name: name,
			Machine: sim.NewMachine(sim.MachineConfig{
				Name: name, SpeedMHz: 1000, OnWallPower: true,
			}),
			Link: simnet.NewLink(simnet.LinkConfig{
				Name: "lan-" + name, Latency: time.Millisecond, BandwidthBps: 1_000_000,
			}),
		}
	}
	setup, err := NewSimSetup(SimOptions{
		Host:     host,
		Servers:  []SimServer{mkServer("s1"), mkServer("s2")},
		Failover: fo,
		Health:   h,
	})
	if err != nil {
		t.Fatal(err)
	}
	work := func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 500})
		return []byte("ok"), nil
	}
	setup.Env.Host().RegisterService("toy", work)
	for _, s := range []string{"s1", "s2"} {
		node, _, _ := setup.Env.Server(s)
		node.RegisterService("toy", work)
	}
	return setup
}

// trainBoth teaches the demand models both plans on both servers.
func trainBoth(t *testing.T, setup *SimSetup, op *Operation) {
	t.Helper()
	setup.Refresh()
	for i := 0; i < 2; i++ {
		runToy(t, setup, op, solver.Alternative{Plan: "local"})
		runToy(t, setup, op, solver.Alternative{Server: "s1", Plan: "remote"})
		runToy(t, setup, op, solver.Alternative{Server: "s2", Plan: "remote"})
	}
}

// TestFailoverToNextBestServer partitions the decided server's link between
// decision and execution: the call must transparently re-plan onto the
// surviving server, without degrading to local execution.
func TestFailoverToNextBestServer(t *testing.T) {
	setup := newFailoverSetup(t, FailoverOptions{}, HealthOptions{})
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainBoth(t, setup, op)

	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	_, link, _ := setup.Env.Server("s1")
	link.SetPartitioned(true)

	out, err := octx.DoRemoteOp("run", []byte("x"))
	if err != nil {
		t.Fatalf("failover did not absorb the partition: %v", err)
	}
	if string(out) != "ok" {
		t.Fatalf("out = %q", out)
	}
	if octx.Server() != "s2" {
		t.Fatalf("adopted server = %q, want s2", octx.Server())
	}

	// A second call in the same operation goes straight to the adopted
	// server — no repeated failover.
	if _, err := octx.DoRemoteOp("run", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("remote-to-remote failover must not degrade: %+v", rep)
	}
	if len(rep.Failovers) != 1 {
		t.Fatalf("failovers = %+v, want exactly one", rep.Failovers)
	}
	ev := rep.Failovers[0]
	if ev.From != "s1" || ev.To != "s2" || ev.OpType != "run" || ev.Cause == "" {
		t.Fatalf("failover event = %+v", ev)
	}
	if n := setup.Client.Health().ConsecutiveFailures("s1"); n != 1 {
		t.Fatalf("s1 consecutive failures = %d, want 1", n)
	}
	if setup.Client.Health().State("s2") != HealthClosed {
		t.Fatalf("s2 health = %v", setup.Client.Health().State("s2"))
	}
}

// TestFailoverBudgetAndDisable exercises the two error paths: every rung
// exhausted with local fallback forbidden, and failover disabled outright.
func TestFailoverBudgetAndDisable(t *testing.T) {
	setup := newFailoverSetup(t, FailoverOptions{NoLocalFallback: true}, HealthOptions{})
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainBoth(t, setup, op)

	for _, s := range []string{"s1", "s2"} {
		_, link, _ := setup.Env.Server(s)
		link.SetPartitioned(true)
	}
	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := octx.DoRemoteOp("run", []byte("x")); err == nil {
		t.Fatal("every server partitioned and no local fallback: must fail")
	}
	octx.Abort()

	disabled := newFailoverSetup(t, FailoverOptions{MaxAttempts: -1}, HealthOptions{})
	op2, err := disabled.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	disabled.Refresh()
	_, link, _ := disabled.Env.Server("s1")
	link.SetPartitioned(true)
	octx2, err := disabled.Client.BeginForced(op2, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := octx2.DoRemoteOp("run", []byte("x")); err == nil {
		t.Fatal("failover disabled: the partition must surface")
	}
	octx2.Abort()
}

// TestParallelBranchFailover partitions one of the two servers used by a
// parallel phase: the surviving branch's result is kept and the failed
// branch is re-executed on the healthy server.
func TestParallelBranchFailover(t *testing.T) {
	setup := newFailoverSetup(t, FailoverOptions{}, HealthOptions{})
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainBoth(t, setup, op)

	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	// s2 dies mid-phase: its branch partitions, s1's branch survives.
	_, link2, _ := setup.Env.Server("s2")
	link2.SetPartitioned(true)

	outs, err := octx.DoParallelOps([]ParallelCall{
		{Server: "s1", OpType: "run", Payload: []byte("a")},
		{Server: "s2", OpType: "run", Payload: []byte("b")},
	})
	if err != nil {
		t.Fatalf("parallel failover did not absorb the partition: %v", err)
	}
	if len(outs) != 2 || string(outs[0]) != "ok" || string(outs[1]) != "ok" {
		t.Fatalf("outputs = %q", outs)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("branch failover onto s1 must not degrade: %+v", rep)
	}
	if len(rep.Failovers) != 1 || rep.Failovers[0].From != "s2" || rep.Failovers[0].To != "s1" {
		t.Fatalf("failovers = %+v", rep.Failovers)
	}
}

// TestHealthQuarantineAndReadoption drives a server through the breaker
// lifecycle end to end: repeated failures open it, polls skip it while
// quarantined, and a successful poll after healing re-adopts it.
func TestHealthQuarantineAndReadoption(t *testing.T) {
	setup := newFailoverSetup(t, FailoverOptions{}, HealthOptions{FailureThreshold: 3, Quarantine: 30 * time.Second})
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainBoth(t, setup, op)
	health := setup.Client.Health()

	// One operation-driven failure plus failed polls push s1 past the
	// threshold and open the breaker.
	_, link, _ := setup.Env.Server("s1")
	link.SetPartitioned(true)
	octxF, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := octxF.DoRemoteOp("run", []byte("x")); err != nil {
		t.Fatalf("failover must absorb the partition: %v", err)
	}
	if _, err := octxF.End(); err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()
	setup.Client.PollServers()
	if health.State("s1") != HealthOpen {
		t.Fatalf("s1 health after 3 failures = %v, want open", health.State("s1"))
	}

	// While quarantined, decisions must not place work on s1 even though
	// the link (from the client's stale view) might look fine.
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Server == "s1" {
		t.Fatalf("quarantined server chosen: %+v", octx.Decision().Alternative)
	}
	octx.Abort()

	// Healing the link alone is not enough — the quarantine must elapse
	// first; then the next poll doubles as the half-open probe and the
	// server is re-adopted.
	link.SetPartitioned(false)
	setup.Clock.Advance(31 * time.Second)
	setup.Refresh()
	if health.State("s1") != HealthClosed {
		t.Fatalf("s1 health after heal + poll = %v, want closed", health.State("s1"))
	}
	octx2, err := setup.Client.BeginForced(op, solver.Alternative{Server: "s1", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := octx2.DoRemoteOp("run", []byte("x")); err != nil {
		t.Fatalf("re-adopted server must serve again: %v", err)
	}
	if _, err := octx2.End(); err != nil {
		t.Fatal(err)
	}
}

// TestOpContextIdempotency covers the End/Abort lifecycle edge cases: End
// after Abort, double Abort, double End, Abort after End, and Abort on a
// never-started operation.
func TestOpContextIdempotency(t *testing.T) {
	setup := newFailoverSetup(t, FailoverOptions{}, HealthOptions{})
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()

	// Abort, then Abort again, then End.
	octx, err := setup.Client.BeginForced(op, solver.Alternative{Plan: "local"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	octx.Abort()
	octx.Abort() // idempotent
	if _, err := octx.End(); err != errAborted {
		t.Fatalf("End after Abort = %v, want errAborted", err)
	}
	if _, err := octx.End(); err != errAborted {
		t.Fatalf("second End after Abort = %v, want errAborted", err)
	}
	if _, err := octx.DoLocalOp("run", nil); err != errEnded {
		t.Fatalf("DoLocalOp after Abort = %v, want errEnded", err)
	}

	// End, then End again, then Abort.
	octx2, err := setup.Client.BeginForced(op, solver.Alternative{Plan: "local"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := octx2.DoLocalOp("run", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := octx2.End(); err != nil {
		t.Fatal(err)
	}
	if _, err := octx2.End(); err != errEnded {
		t.Fatalf("double End = %v, want errEnded", err)
	}
	octx2.Abort() // no-op after End

	// Abort on a never-started zero-value context must not panic.
	var never OpContext
	never.Abort()
	never.Abort()
}

// TestGarbageFrameServerLive points the live runtime at a server that
// answers status polls correctly but writes garbage instead of wire frames
// for service calls: the call must classify as transient and recover
// locally rather than surfacing a protocol error.
func TestGarbageFrameServerLive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					msg, _, err := wire.ReadMessage(c)
					if err != nil {
						return
					}
					switch msg.Type {
					case wire.MsgStatus:
						reply := &wire.Message{
							Type: wire.MsgStatusReply,
							ID:   msg.ID,
							Status: &wire.ServerStatus{
								Name:     "garbage",
								SpeedMHz: 1000,
								AvailMHz: 1000,
								Services: []string{"toy"},
							},
						}
						if _, err := wire.WriteMessage(c, reply); err != nil {
							return
						}
					case wire.MsgPing:
						if _, err := wire.WriteMessage(c, &wire.Message{Type: wire.MsgPong, ID: msg.ID}); err != nil {
							return
						}
					default:
						c.Write([]byte("!!!! this is not a wire frame !!!!"))
						return
					}
				}
			}(c)
		}
	}()

	setup := newLiveClient(t, map[string]string{"garbage": ln.Addr().String()})
	setup.Client.PollServers()
	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "toy.garbage",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: "garbage", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := octx.DoRemoteOp("run", []byte("x"))
	if err != nil {
		t.Fatalf("garbage frames must trigger failover, got error: %v", err)
	}
	if string(out) != "done" {
		t.Fatalf("out = %q, want local liveWork output", out)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || len(rep.Failovers) != 1 || rep.Failovers[0].To != "" {
		t.Fatalf("report = %+v, want degraded local recovery", rep)
	}
	if n := setup.Client.Health().ConsecutiveFailures("garbage"); n != 1 {
		t.Fatalf("garbage server failures = %d, want 1", n)
	}
}
