package core

import (
	"testing"
	"time"
)

// TestHealthTrackerLifecycle walks the full circuit-breaker lifecycle:
// closed → open after threshold consecutive failures → still quarantined
// before the window elapses → half-open probe afterwards → reopened by a
// failed probe → closed by a successful one.
func TestHealthTrackerLifecycle(t *testing.T) {
	h := NewHealthTracker(HealthOptions{FailureThreshold: 3, Quarantine: 30 * time.Second})
	now := time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)

	if !h.Usable("s", now) || h.State("s") != HealthClosed {
		t.Fatalf("fresh server not closed/usable")
	}

	// Two failures stay closed; an interleaved success resets the streak.
	h.RecordFailure("s", now)
	h.RecordFailure("s", now)
	if h.State("s") != HealthClosed {
		t.Fatalf("state after 2 failures = %v", h.State("s"))
	}
	h.RecordSuccess("s")
	if h.ConsecutiveFailures("s") != 0 {
		t.Fatalf("success did not reset the streak")
	}

	// Three consecutive failures open the circuit.
	for i := 0; i < 3; i++ {
		h.RecordFailure("s", now)
	}
	if h.State("s") != HealthOpen {
		t.Fatalf("state after threshold = %v", h.State("s"))
	}
	if h.Usable("s", now.Add(29*time.Second)) {
		t.Fatal("server usable inside quarantine")
	}
	if got := h.Quarantined(now.Add(10 * time.Second)); len(got) != 1 || got[0] != "s" {
		t.Fatalf("quarantined = %v", got)
	}

	// Quarantine elapses: the next Usable admits the half-open probe.
	probeTime := now.Add(31 * time.Second)
	if !h.Usable("s", probeTime) {
		t.Fatal("server not usable after quarantine")
	}
	if h.State("s") != HealthHalfOpen {
		t.Fatalf("state after quarantine = %v", h.State("s"))
	}

	// A failed probe reopens immediately, restarting the quarantine.
	h.RecordFailure("s", probeTime)
	if h.State("s") != HealthOpen {
		t.Fatalf("state after failed probe = %v", h.State("s"))
	}
	if h.Usable("s", probeTime.Add(29*time.Second)) {
		t.Fatal("server usable inside second quarantine")
	}

	// A successful probe closes the circuit.
	if !h.Usable("s", probeTime.Add(31*time.Second)) {
		t.Fatal("server not usable after second quarantine")
	}
	h.RecordSuccess("s")
	if h.State("s") != HealthClosed {
		t.Fatalf("state after successful probe = %v", h.State("s"))
	}
	if h.Usable("s", probeTime.Add(31*time.Second)) != true {
		t.Fatal("closed server not usable")
	}
}

// TestHealthTrackerDisabled verifies a negative threshold turns the
// tracker into a no-op, and that a nil tracker is safe.
func TestHealthTrackerDisabled(t *testing.T) {
	h := NewHealthTracker(HealthOptions{FailureThreshold: -1})
	now := time.Now()
	for i := 0; i < 10; i++ {
		h.RecordFailure("s", now)
	}
	if !h.Usable("s", now) || h.State("s") != HealthClosed {
		t.Fatal("disabled tracker quarantined a server")
	}

	var nilTracker *HealthTracker
	nilTracker.RecordFailure("s", now)
	nilTracker.RecordSuccess("s")
	if !nilTracker.Usable("s", now) {
		t.Fatal("nil tracker not usable")
	}
}
