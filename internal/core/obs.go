package core

import (
	"time"

	"spectra/internal/monitor"
	"spectra/internal/obs"
)

// obsHooks holds pre-resolved metric handles so the client's hot path never
// touches the registry map. All handles are nil when no observer is
// configured; nil handles are no-ops, so call sites need no guards and the
// disabled path costs a single nil test per event.
type obsHooks struct {
	o *obs.Observer

	opBegin, opEnd, opAbort, opForced, opDegraded *obs.Counter
	solverEvals, solverRestarts                   *obs.Counter
	failoverEvents, failoverLocal                 *obs.Counter
	pollCycles, pollErrors                        *obs.Counter
	snapCacheHits, snapCacheMisses                *obs.Counter
	deadlineExceeded, hedgeLaunched, hedgeWins    *obs.Counter

	beginSeconds, pollSeconds *obs.Histogram
	rankPct, candidates       *obs.Histogram
	budgetSeconds             *obs.Histogram
}

func newObsHooks(o *obs.Observer) obsHooks {
	h := obsHooks{o: o}
	if o == nil || o.Registry == nil {
		return h
	}
	r := o.Registry
	obs.RegisterCoreMetrics(r)
	h.opBegin = r.Counter(obs.MOpBegin)
	h.opEnd = r.Counter(obs.MOpEnd)
	h.opAbort = r.Counter(obs.MOpAbort)
	h.opForced = r.Counter(obs.MOpForced)
	h.opDegraded = r.Counter(obs.MOpDegraded)
	h.solverEvals = r.Counter(obs.MSolverEvaluations)
	h.solverRestarts = r.Counter(obs.MSolverRestarts)
	h.failoverEvents = r.Counter(obs.MFailoverEvents)
	h.failoverLocal = r.Counter(obs.MFailoverLocal)
	h.pollCycles = r.Counter(obs.MPollCycles)
	h.pollErrors = r.Counter(obs.MPollErrors)
	h.snapCacheHits = r.Counter(obs.MSnapCacheHits)
	h.snapCacheMisses = r.Counter(obs.MSnapCacheMisses)
	h.deadlineExceeded = r.Counter(obs.MDeadlineExceeded)
	h.hedgeLaunched = r.Counter(obs.MHedgeLaunched)
	h.hedgeWins = r.Counter(obs.MHedgeWins)
	h.beginSeconds = r.Histogram(obs.MBeginSeconds, obs.DefaultLatencyBuckets)
	h.pollSeconds = r.Histogram(obs.MPollSeconds, obs.DefaultLatencyBuckets)
	h.rankPct = r.Histogram(obs.MSolverRankPct, obs.DefaultPercentBuckets)
	h.candidates = r.Histogram(obs.MSolverCandidates, obs.DefaultCountBuckets)
	h.budgetSeconds = r.Histogram(obs.MDeadlineBudget, obs.DefaultLatencyBuckets)
	return h
}

// healthTransition feeds circuit-breaker state changes into the registry.
// Installed as HealthTracker.OnTransition, so it runs under the tracker's
// lock — counter increments are lock-free atomics, which keeps that safe.
func (h obsHooks) healthTransition(opened, closed *obs.Counter) func(string, HealthState, HealthState) {
	return func(_ string, from, to HealthState) {
		switch {
		case to == HealthOpen && from != HealthOpen:
			opened.Inc()
		case to == HealthClosed && from != HealthClosed:
			closed.Inc()
		}
	}
}

// summarizeSnapshot reduces a monitor snapshot to the plain values recorded
// in a decision trace.
func summarizeSnapshot(snap *monitor.Snapshot, servers []string) obs.SnapshotSummary {
	sum := obs.SnapshotSummary{
		When:              snap.When,
		LocalCPUAvailMHz:  snap.LocalCPU.AvailMHz,
		LocalLoadFraction: snap.LocalCPU.LoadFraction,
		BatteryJoules:     snap.Battery.RemainingJoules,
		EnergyImportance:  snap.Battery.Importance,
		OnWallPower:       snap.Battery.OnWallPower,
	}
	if len(servers) > 0 {
		sum.Servers = make(map[string]obs.ServerAvail, len(servers))
		for _, s := range servers {
			net := snap.Network[s]
			cpu := snap.RemoteCPU[s]
			sum.Servers[s] = obs.ServerAvail{
				Reachable:    net.Reachable,
				CPUAvailMHz:  cpu.AvailMHz,
				BandwidthBps: net.BandwidthBps,
				LatencyMs:    float64(net.Latency) / float64(time.Millisecond),
			}
		}
	}
	return sum
}

// traceFailovers converts the op context's failover events into trace
// records.
func traceFailovers(events []FailoverEvent) []obs.FailoverRecord {
	if len(events) == 0 {
		return nil
	}
	out := make([]obs.FailoverRecord, len(events))
	for i, e := range events {
		out[i] = obs.FailoverRecord{OpType: e.OpType, From: e.From, To: e.To, Cause: e.Cause}
	}
	return out
}
