package core

import (
	"fmt"
	"time"

	"spectra/internal/coda"
	"spectra/internal/energy"
	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/sim"
	"spectra/internal/solver"

	spectrarpc "spectra/internal/rpc"
)

// LiveOptions describes a live (TCP) Spectra client deployment.
type LiveOptions struct {
	// Host models the client machine; nil selects a generic laptop-class
	// model. Live compute is paced by this model's clock rate.
	Host *sim.Machine
	// Servers maps server names to spectrad TCP addresses.
	Servers map[string]string
	// UsageLogDir enables persistent usage logs when non-empty.
	UsageLogDir string
	// Models, Solver, Exhaustive pass through to the client Config.
	Models     ModelOptions
	Solver     solver.Options
	Exhaustive bool
	// Failover and Health tune transparent recovery and server health
	// tracking; zero values enable both with defaults.
	Failover FailoverOptions
	Health   HealthOptions
	// Deadline tunes end-to-end latency budgets, cancellation, and hedged
	// requests; the zero value enables them with defaults.
	Deadline DeadlineOptions
	// Obs enables metrics, decision traces, and prediction-accuracy
	// accounting; nil disables observability.
	Obs *obs.Observer
	// PoolSize caps multiplexed connections per server; 0 selects
	// rpc.DefaultPoolSize. Concurrency comes from stream slots, not
	// connection count: each connection carries StreamsPerConn concurrent
	// streams.
	PoolSize int
	// StreamsPerConn caps concurrent in-flight streams per connection; 0
	// selects rpc.DefaultStreamsPerConn. 1 reproduces the old
	// serial-per-connection exchange (useful as a benchmark baseline).
	StreamsPerConn int
	// SnapshotTTL caches the decision snapshot so concurrent Begins share
	// one monitor fan-out. 0 selects DefaultSnapshotTTL; negative disables
	// caching.
	SnapshotTTL time.Duration
	// Cache tunes the placement-decision cache; the zero value disables it
	// (see CacheOptions).
	Cache CacheOptions
}

// DefaultSnapshotTTL is the live decision-snapshot cache window: long
// enough that a burst of concurrent Begins shares one snapshot, short
// enough that decisions never act on stale load or reachability (well
// under the server poll interval).
const DefaultSnapshotTTL = 25 * time.Millisecond

// LiveSetup is an assembled live deployment: the host node, the TCP
// runtime, the monitor framework, and the Spectra client.
type LiveSetup struct {
	Client     *Client
	Host       *Node
	Runtime    *NetRuntime
	Network    *monitor.NetworkMonitor
	Remote     *monitor.RemoteProxyMonitor
	Adaptor    *energy.GoalAdaptor
	Meter      energy.Meter
	FileServer *coda.FileServer
}

// NewLiveSetup assembles a live Spectra client talking to spectrad daemons.
func NewLiveSetup(opts LiveOptions) (*LiveSetup, error) {
	host := opts.Host
	if host == nil {
		host = sim.NewMachine(sim.MachineConfig{
			Name:        "client",
			SpeedMHz:    1000,
			Power:       sim.PowerModel{IdleW: 5, BusyW: 20, NetW: 8},
			OnWallPower: true,
			Battery:     sim.NewBattery(200_000),
		})
	}
	battery := host.Battery()
	if battery == nil {
		battery = sim.NewBattery(1e9)
	}
	fileServer := coda.NewFileServer()
	hostCoda := coda.NewClient(host.Name(), fileServer, 0)
	node := NewNode(host, hostCoda, nil)

	network := monitor.NewNetworkMonitor()
	remote := monitor.NewRemoteProxyMonitor()
	runtime := NewNetRuntime(node, network)

	meter := energy.NewExactMeter(battery)
	adaptor := energy.NewGoalAdaptor(sim.RealClock{}, meter)

	monitors := monitor.NewSet(
		monitor.NewCPUMonitor(host),
		network,
		monitor.NewBatteryMonitor(meter, adaptor, runtime.HostAccount(), host),
		monitor.NewFileCacheMonitor(hostCoda, node.FetchRateBps),
		remote,
	)

	var usageLog *predict.UsageLog
	if opts.UsageLogDir != "" {
		var err error
		usageLog, err = predict.NewUsageLog(opts.UsageLogDir)
		if err != nil {
			return nil, err
		}
	}

	var names []string
	for name, addr := range opts.Servers {
		if addr == "" {
			return nil, fmt.Errorf("core: server %q has no address", name)
		}
		runtime.AddServer(name, addr)
		names = append(names, name)
	}

	runtime.SetPoolOptions(spectrarpc.PoolOptions{
		Size:           opts.PoolSize,
		StreamsPerConn: opts.StreamsPerConn,
	})
	if opts.Obs != nil {
		monitors.SetMetrics(opts.Obs.Registry)
		runtime.SetMetrics(opts.Obs.Registry)
	}

	snapTTL := opts.SnapshotTTL
	switch {
	case snapTTL == 0:
		snapTTL = DefaultSnapshotTTL
	case snapTTL < 0:
		snapTTL = 0
	}

	client, err := NewClient(Config{
		Runtime:     runtime,
		Monitors:    monitors,
		Network:     network,
		Consistency: hostCoda,
		Servers:     names,
		UsageLog:    usageLog,
		Models:      opts.Models,
		Solver:      opts.Solver,
		Exhaustive:  opts.Exhaustive,
		Failover:    opts.Failover,
		Health:      opts.Health,
		Deadline:    opts.Deadline,
		Obs:         opts.Obs,
		SnapshotTTL: snapTTL,
		Cache:       opts.Cache,
	})
	if err != nil {
		return nil, err
	}
	return &LiveSetup{
		Client:     client,
		Host:       node,
		Runtime:    runtime,
		Network:    network,
		Remote:     remote,
		Adaptor:    adaptor,
		Meter:      meter,
		FileServer: fileServer,
	}, nil
}
