package core

import (
	"sync"
	"testing"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
)

// newCacheSetup builds the toy testbed (100 MHz client, 1000 MHz server)
// with the placement-decision cache enabled and any extra SimOptions the
// test wants folded in.
func newCacheSetup(t *testing.T, mutate func(*SimOptions)) *SimSetup {
	t.Helper()
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: true,
		Battery:     sim.NewBattery(50_000),
	})
	server := sim.NewMachine(sim.MachineConfig{
		Name:        "big",
		SpeedMHz:    1000,
		Power:       sim.PowerModel{IdleW: 10, BusyW: 50, NetW: 12},
		OnWallPower: true,
	})
	link := simnet.NewLink(simnet.LinkConfig{
		Name:         "lan",
		Latency:      time.Millisecond,
		BandwidthBps: 1_000_000,
	})
	opts := SimOptions{
		Host:    host,
		Servers: []SimServer{{Name: "big", Machine: server, Link: link}},
		Cache:   CacheOptions{Enabled: true},
	}
	if mutate != nil {
		mutate(&opts)
	}
	setup, err := NewSimSetup(opts)
	if err != nil {
		t.Fatal(err)
	}
	work := func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 500})
		return []byte("ok"), nil
	}
	setup.Env.Host().RegisterService("toy", work)
	node, _, _ := setup.Env.Server("big")
	node.RegisterService("toy", work)
	return setup
}

// trainToy observes both plans a few times so decisions are self-tuned.
func trainToy(t *testing.T, setup *SimSetup, op *Operation) {
	t.Helper()
	setup.Refresh()
	for i := 0; i < 3; i++ {
		runToy(t, setup, op, solver.Alternative{Plan: "local"})
		runToy(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	}
}

// TestDecisionCacheWarmHitMatchesFresh is the equivalence core: a warm
// Begin must return the same decision a fresh solve would, and report
// honest near-zero Choosing overhead.
func TestDecisionCacheWarmHitMatchesFresh(t *testing.T) {
	cached := newCacheSetup(t, nil)
	fresh := newCacheSetup(t, func(o *SimOptions) { o.Cache = CacheOptions{} })

	opC, err := cached.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	opF, err := fresh.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, cached, opC)
	trainToy(t, fresh, opF)

	// Identical deterministic sims: each cached Begin (first a miss that
	// solves, then warm hits) must match the cache-off twin's fresh solve.
	for i := 0; i < 5; i++ {
		oc, err := cached.Client.BeginFidelityOp(opC, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		of, err := fresh.Client.BeginFidelityOp(opF, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		dc, df := oc.Decision(), of.Decision()
		if dc.Alternative.Key() != df.Alternative.Key() {
			t.Fatalf("iteration %d: cached chose %v, fresh chose %v", i, dc.Alternative, df.Alternative)
		}
		if dc.Predicted != df.Predicted {
			t.Fatalf("iteration %d: cached prediction %+v != fresh %+v", i, dc.Predicted, df.Predicted)
		}
		if dc.Utility != df.Utility {
			t.Fatalf("iteration %d: cached utility %v != fresh %v", i, dc.Utility, df.Utility)
		}
		if i > 0 && dc.Overhead.Choosing != 0 {
			t.Fatalf("iteration %d: warm hit reported Choosing=%v, want 0", i, dc.Overhead.Choosing)
		}
		oc.Abort()
		of.Abort()
	}
	stats := cached.Client.DecisionCacheStats()
	if stats.Misses != 1 || stats.Hits != 4 || stats.Stores != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 4 hits, 1 store", stats)
	}
	if off := fresh.Client.DecisionCacheStats(); off != (CacheStats{}) {
		t.Fatalf("cache-off client reported stats %+v", off)
	}
}

// TestDecisionCacheInvalidatesOnDrift pins the drift rule: a large remote
// CPU availability change (several quantization levels) invalidates the
// entry and the next Begin re-solves.
func TestDecisionCacheInvalidatesOnDrift(t *testing.T) {
	setup := newCacheSetup(t, nil)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, setup, op)

	for i := 0; i < 2; i++ {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		octx.Abort()
	}
	if stats := setup.Client.DecisionCacheStats(); stats.Hits != 1 {
		t.Fatalf("warm-up stats = %+v, want 1 hit", stats)
	}

	// 3 competing background tasks quarter the server's fair share:
	// 1000 -> 250 MHz is two octaves, four quantization levels.
	node, _, _ := setup.Env.Server("big")
	node.Machine().SetBackgroundTasks(3)
	setup.Refresh()

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	octx.Abort()
	stats := setup.Client.DecisionCacheStats()
	if stats.InvalidDrift != 1 {
		t.Fatalf("stats = %+v, want exactly one drift invalidation", stats)
	}
	if stats.Misses != 2 || stats.Stores != 2 {
		t.Fatalf("stats = %+v, want the drifted Begin to re-solve and refill", stats)
	}
}

// TestDecisionCacheInvalidatesOnHealthChange pins the health rule: a
// breaker transition flips the coarse reachability vector, which drift
// tolerance never excuses.
func TestDecisionCacheInvalidatesOnHealthChange(t *testing.T) {
	setup := newCacheSetup(t, nil)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, setup, op)

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	octx.Abort()

	// Three consecutive failures open the breaker on "big".
	now := setup.Clock.Now()
	for i := 0; i < 3; i++ {
		setup.Client.Health().RecordFailure("big", now)
	}
	if got := setup.Client.Health().State("big"); got != HealthOpen {
		t.Fatalf("health state = %v, want open", got)
	}

	octx, err = setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Plan != "local" {
		t.Fatalf("post-quarantine decision = %+v, want local", octx.Decision().Alternative)
	}
	octx.Abort()
	if stats := setup.Client.DecisionCacheStats(); stats.InvalidHealth != 1 {
		t.Fatalf("stats = %+v, want one health invalidation", stats)
	}
}

// TestDecisionCacheInvalidatesOnAccuracyRegression pins the predictor-
// trust rule: when an operation's rolling relative error grows past the
// threshold after the entry was filled, the entry is dropped.
func TestDecisionCacheInvalidatesOnAccuracyRegression(t *testing.T) {
	o := obs.NewObserver()
	setup := newCacheSetup(t, func(s *SimOptions) { s.Obs = o })
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, setup, op)

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	octx.Abort()

	// The predictor goes bad: rolling latency error jumps to ~0.9, far
	// past the default 0.15 regression threshold. Below AccuracyMinSamples
	// the estimate is not acted on, so the entry must survive the first
	// two samples (the satellite-3 guard) and die on the third.
	for i := 0; i < obs.AccuracyMinSamples; i++ {
		if stats := setup.Client.DecisionCacheStats(); stats.InvalidAccuracy != 0 {
			t.Fatalf("entry invalidated after only %d error samples: %+v", i, stats)
		}
		octx, err = setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		octx.Abort()
		o.Accuracy.Observe(op.Name(), obs.ResLatency, 0.9)
	}
	octx, err = setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	octx.Abort()
	if stats := setup.Client.DecisionCacheStats(); stats.InvalidAccuracy != 1 {
		t.Fatalf("stats = %+v, want one accuracy invalidation", stats)
	}

	// The refilled entry recorded the (now stable) high error as its
	// baseline, so steady badness does not thrash the cache.
	octx, err = setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	octx.Abort()
	if stats := setup.Client.DecisionCacheStats(); stats.InvalidAccuracy != 1 {
		t.Fatalf("stats = %+v: steady high error must not re-invalidate", stats)
	}
}

// TestDecisionCacheTTLExpiry pins the hard lifetime, measured on the
// runtime (virtual) clock.
func TestDecisionCacheTTLExpiry(t *testing.T) {
	setup := newCacheSetup(t, nil)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, setup, op)

	for i := 0; i < 2; i++ {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		octx.Abort()
	}
	setup.Clock.Advance(DefaultCacheTTL)
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	octx.Abort()
	stats := setup.Client.DecisionCacheStats()
	if stats.InvalidTTL != 1 || stats.Hits != 1 {
		t.Fatalf("stats = %+v, want one TTL invalidation after one hit", stats)
	}
}

// TestDecisionCacheOutcomeInvalidation pins End feedback: a warm-hit
// operation whose execution failed over (degraded) drops its entry, so the
// next Begin re-deliberates.
func TestDecisionCacheOutcomeInvalidation(t *testing.T) {
	setup := newCacheSetup(t, nil)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, setup, op)

	warm := func() *OpContext {
		t.Helper()
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		return octx
	}
	warm().Abort() // fill
	octx := warm() // hit
	if octx.Decision().Alternative.Server != "big" {
		t.Fatalf("trained decision = %+v, want remote on big", octx.Decision().Alternative)
	}

	// The server dies mid-operation; failover degrades to local execution.
	_, link, _ := setup.Env.Server("big")
	link.SetPartitioned(true)
	if _, err := octx.DoRemoteOp("run", []byte("x")); err != nil {
		t.Fatalf("failover should have recovered: %v", err)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded && len(rep.Failovers) == 0 {
		t.Fatalf("report = %+v, expected a failover", rep)
	}
	if stats := setup.Client.DecisionCacheStats(); stats.InvalidOutcome != 1 {
		t.Fatalf("stats = %+v, want one outcome invalidation", stats)
	}
}

// TestDecisionCacheBypasses pins the three bypass rules: forced Begins and
// traced Begins never consult or fill the cache.
func TestDecisionCacheBypasses(t *testing.T) {
	o := obs.NewObserver()
	o.Sink = obs.NewMemorySink(16)
	setup := newCacheSetup(t, func(s *SimOptions) { s.Obs = o })
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, setup, op) // forced runs: all bypasses
	base := setup.Client.DecisionCacheStats()
	if base.Bypasses == 0 || base.Stores != 0 || base.Hits != 0 {
		t.Fatalf("forced training stats = %+v, want only bypasses", base)
	}

	// Traced Begin: bypasses too, so the emitted trace records a complete
	// deliberation.
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	octx.Abort()
	stats := setup.Client.DecisionCacheStats()
	if stats.Bypasses != base.Bypasses+1 || stats.Stores != 0 {
		t.Fatalf("traced Begin stats = %+v, want one more bypass and no store", stats)
	}
}

// TestDecisionCacheConcurrentStress races warm Begins against each other
// (run under -race) and checks every concurrent decision matches the
// cache-off twin's fresh solve.
func TestDecisionCacheConcurrentStress(t *testing.T) {
	cached := newCacheSetup(t, nil)
	fresh := newCacheSetup(t, func(o *SimOptions) { o.Cache = CacheOptions{} })
	opC, err := cached.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	opF, err := fresh.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, cached, opC)
	trainToy(t, fresh, opF)

	want, err := fresh.Client.BeginFidelityOp(opF, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	wantKey := want.Decision().Alternative.Key()
	want.Abort()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen = make(map[string]int)
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				octx, err := cached.Client.BeginFidelityOp(opC, nil, "")
				if err != nil {
					t.Error(err)
					return
				}
				key := octx.Decision().Alternative.Key()
				octx.Abort()
				mu.Lock()
				seen[key]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 1 || seen[wantKey] != 400 {
		t.Fatalf("concurrent decisions = %v, want 400× %s", seen, wantKey)
	}
	stats := cached.Client.DecisionCacheStats()
	if stats.Hits+stats.Misses != 400 || stats.Hits < 300 {
		t.Fatalf("stats = %+v, want 400 lookups, overwhelmingly hits", stats)
	}
}

// TestDecisionCacheLRUEviction unit-tests the bound: beyond MaxEntries the
// least-recently-used entry is evicted.
func TestDecisionCacheLRUEviction(t *testing.T) {
	dc := newDecisionCache(CacheOptions{Enabled: true, MaxEntries: 2}, nil)
	now := time.Unix(0, 0)
	var coarse monitor.CoarseSnapshot
	dc.store("a", coarse, Decision{}, obs.ResourceDemand{}, now, nil)
	dc.store("b", coarse, Decision{}, obs.ResourceDemand{}, now, nil)
	if _, _, ok := dc.lookup("a", coarse, now, nil); !ok {
		t.Fatal("a should be cached")
	}
	// a is now most recent; storing c must evict b.
	dc.store("c", coarse, Decision{}, obs.ResourceDemand{}, now, nil)
	if _, _, ok := dc.lookup("b", coarse, now, nil); ok {
		t.Fatal("b should have been evicted")
	}
	if _, _, ok := dc.lookup("a", coarse, now, nil); !ok {
		t.Fatal("a should have survived eviction")
	}
	stats := dc.snapshot()
	if stats.Evictions != 1 || stats.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", stats)
	}
}

// TestDecisionCacheDriftTolerance unit-tests the level arithmetic: one
// level of movement is tolerated by default, two is not, and a
// reachability flip is never tolerated.
func TestDecisionCacheDriftTolerance(t *testing.T) {
	dc := newDecisionCache(CacheOptions{Enabled: true}, nil)
	now := time.Unix(0, 0)
	base := monitor.CoarseSnapshot{
		LocalCPULevel: 13, BatteryLevel: 30, ImportanceLevel: 0, OnWallPower: true,
		Servers: []monitor.CoarseServer{{Name: "s", Reachable: true, CPULevel: 20, BandwidthLevel: 40, LatencyLevel: 0}},
	}
	dc.store("k", base, Decision{}, obs.ResourceDemand{}, now, nil)

	oneOff := base
	oneOff.LocalCPULevel = 12
	if _, _, ok := dc.lookup("k", oneOff, now, nil); !ok {
		t.Fatal("one level of drift must be tolerated")
	}
	twoOff := base
	twoOff.Servers = []monitor.CoarseServer{{Name: "s", Reachable: true, CPULevel: 18, BandwidthLevel: 40, LatencyLevel: 0}}
	if _, _, ok := dc.lookup("k", twoOff, now, nil); ok {
		t.Fatal("two levels of drift must invalidate")
	}

	dc.store("k", base, Decision{}, obs.ResourceDemand{}, now, nil)
	dead := base
	dead.Servers = []monitor.CoarseServer{{Name: "s", Reachable: false, CPULevel: 20, BandwidthLevel: 40, LatencyLevel: 0}}
	if _, _, ok := dc.lookup("k", dead, now, nil); ok {
		t.Fatal("a reachability flip must invalidate")
	}
	stats := dc.snapshot()
	if stats.InvalidDrift != 1 || stats.InvalidHealth != 1 {
		t.Fatalf("stats = %+v, want one drift and one health invalidation", stats)
	}
}

// TestParamBucketing pins the logarithmic input-parameter bucketing: close
// values share a bucket, distant ones do not, and rendering is
// order-independent.
func TestParamBucketing(t *testing.T) {
	if paramBucketKey(map[string]float64{"a": 1, "b": 2}) != paramBucketKey(map[string]float64{"b": 2, "a": 1}) {
		t.Fatal("bucket key must not depend on map order")
	}
	if paramBucketKey(map[string]float64{"n": 100}) != paramBucketKey(map[string]float64{"n": 104}) {
		t.Fatal("values within ~2% must share a bucket")
	}
	if paramBucketKey(map[string]float64{"n": 100}) == paramBucketKey(map[string]float64{"n": 200}) {
		t.Fatal("a doubled value must change bucket")
	}
	if paramLevel(0) != 0 || paramLevel(-5) != -paramLevel(5) {
		t.Fatalf("paramLevel: zero=%d, -5=%d, 5=%d", paramLevel(0), paramLevel(-5), paramLevel(5))
	}
	if paramBucketKey(nil) != "" {
		t.Fatal("empty params must render empty")
	}
}

// TestSnapshotCacheBustsOnHealthTransition is the satellite-1 regression
// test: a TTL-fresh snapshot must be discarded when the health tracker
// transitions, so a post-failover Begin sees the real fleet.
func TestSnapshotCacheBustsOnHealthTransition(t *testing.T) {
	setup := newCacheSetup(t, nil)
	// A second client over the same monitors, with an hour-long snapshot
	// TTL: without generation busting, the stale snapshot would outlive
	// any breaker transition.
	c2, err := NewClient(Config{
		Runtime:     setup.Runtime,
		Monitors:    setup.Client.Monitors(),
		Network:     setup.Network,
		Servers:     []string{"big"},
		SnapshotTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()

	servers := c2.Servers()
	s1, _ := c2.snapshotFor(servers)
	if !s1.Network["big"].Reachable {
		t.Fatal("server should start reachable")
	}
	if s2, _ := c2.snapshotFor(servers); s2 != s1 {
		t.Fatal("TTL-fresh snapshot should be shared")
	}

	now := setup.Clock.Now()
	for i := 0; i < 3; i++ {
		c2.Health().RecordFailure("big", now)
	}
	s3, _ := c2.snapshotFor(servers)
	if s3 == s1 {
		t.Fatal("snapshot cache served a stale fleet view across a health transition")
	}
	if s3.Network["big"].Reachable {
		t.Fatal("post-transition snapshot must fold in the open breaker")
	}
}

// stepClock is a deterministic overhead clock: every Now() call advances
// it by one fixed step.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func (c *stepClock) Sleep(time.Duration) {}

// TestOverheadClockInjectable is the satellite-2 regression test: every
// BeginOverhead measurement must route through Config.OverheadClock, so an
// injected clock makes the breakdown deterministic — and a warm hit costs
// exactly one clock interval (begin entry to warm exit) with zero Choosing
// and FilePrediction.
func TestOverheadClockInjectable(t *testing.T) {
	const step = time.Millisecond
	clk := &stepClock{now: time.Unix(0, 0), step: step}
	setup := newCacheSetup(t, func(o *SimOptions) { o.OverheadClock = clk })
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	trainToy(t, setup, op)

	solve, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	oh := solve.Decision().Overhead
	solve.Abort()
	if oh.Total <= 0 || oh.Total%step != 0 {
		t.Fatalf("solver-path Total = %v, want a positive multiple of %v", oh.Total, step)
	}
	if oh.Choosing <= 0 || oh.Choosing%step != 0 {
		t.Fatalf("solver-path Choosing = %v, want a positive multiple of %v", oh.Choosing, step)
	}

	warm, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	oh = warm.Decision().Overhead
	warm.Abort()
	if oh.Total != step {
		t.Fatalf("warm-hit Total = %v, want exactly one clock step (%v)", oh.Total, step)
	}
	if oh.Choosing != 0 || oh.FilePrediction != 0 {
		t.Fatalf("warm-hit overhead = %+v, want zero Choosing and FilePrediction", oh)
	}
	if oh.Other != step {
		t.Fatalf("warm-hit Other = %v, want %v", oh.Other, step)
	}
}
