package core

import (
	"testing"
	"time"

	"spectra/internal/obs"
	"spectra/internal/sim"
	"spectra/internal/simnet"
)

// newBenchSetup is newToySetup for benchmarks, with an optional observer.
func newBenchSetup(b *testing.B, o *obs.Observer) (*SimSetup, *Operation) {
	b.Helper()
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: true,
		Battery:     sim.NewBattery(50_000),
	})
	server := sim.NewMachine(sim.MachineConfig{
		Name:        "big",
		SpeedMHz:    1000,
		Power:       sim.PowerModel{IdleW: 10, BusyW: 50, NetW: 12},
		OnWallPower: true,
	})
	link := simnet.NewLink(simnet.LinkConfig{
		Name:         "lan",
		Latency:      time.Millisecond,
		BandwidthBps: 1_000_000,
	})
	setup, err := NewSimSetup(SimOptions{
		Host:    host,
		Servers: []SimServer{{Name: "big", Machine: server, Link: link}},
		Obs:     o,
	})
	if err != nil {
		b.Fatal(err)
	}
	work := func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 50})
		return []byte("ok"), nil
	}
	setup.Env.Host().RegisterService("toy", work)
	node, _, _ := setup.Env.Server("big")
	node.RegisterService("toy", work)

	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		b.Fatal(err)
	}
	setup.Refresh()
	// One warm-up op so the models have data and the solver takes its
	// steady-state path.
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := octx.DoLocalOp("run", []byte("x")); err != nil {
		b.Fatal(err)
	}
	if _, err := octx.End(); err != nil {
		b.Fatal(err)
	}
	return setup, op
}

// benchBeginEnd measures the full Begin + DoLocalOp + End decision path.
func benchBeginEnd(b *testing.B, o *obs.Observer) {
	setup, op := newBenchSetup(b, o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := octx.DoLocalOp("run", nil); err != nil {
			b.Fatal(err)
		}
		if _, err := octx.End(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeginEndNoObserver is the baseline: no observability at all.
func BenchmarkBeginEndNoObserver(b *testing.B) {
	benchBeginEnd(b, nil)
}

// BenchmarkBeginEndMetricsOnly attaches an Observer with metrics and
// accuracy accounting but no trace sink — the acceptance criterion is that
// this stays within 2% of the baseline.
func BenchmarkBeginEndMetricsOnly(b *testing.B) {
	benchBeginEnd(b, obs.NewObserver())
}

// BenchmarkBeginEndTracing additionally constructs a full decision trace
// per operation (bounded in-memory sink).
func BenchmarkBeginEndTracing(b *testing.B) {
	o := obs.NewObserver()
	o.Sink = obs.NewMemorySink(128)
	benchBeginEnd(b, o)
}
