package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"spectra/internal/sim"
)

func TestACPIMeterQuantizes(t *testing.T) {
	b := sim.NewBattery(36_000) // 10 Wh = 10000 mWh
	m := NewACPIMeter(b)
	if m.Name() != "acpi" {
		t.Fatalf("name = %q", m.Name())
	}
	if got := m.RemainingMWH(); got != 10_000 {
		t.Fatalf("remaining mWh = %v, want 10000", got)
	}
	b.Drain(1.8) // half a mWh: quantized away
	if got := m.RemainingMWH(); got != 9_999 {
		t.Fatalf("remaining mWh after 0.5mWh drain = %v, want 9999", got)
	}
	if got := m.CumulativeJoules(); got != 0 {
		t.Fatalf("cumulative below quantum = %v, want 0", got)
	}
	b.Drain(1.8) // now a full mWh drained
	if got := m.CumulativeJoules(); math.Abs(got-3.6) > 1e-9 {
		t.Fatalf("cumulative = %v, want 3.6", got)
	}
}

func TestSmartBatteryMeterQuantizes(t *testing.T) {
	b := sim.NewBattery(3.6 * 3.7 * 1000) // exactly 1000 mAh at 3.7 V
	m := NewSmartBatteryMeter(b)
	if m.Name() != "smartbattery" {
		t.Fatalf("name = %q", m.Name())
	}
	if got := m.RemainingMAH(); got != 1000 {
		t.Fatalf("remaining mAh = %v, want 1000", got)
	}
	b.Drain(3.6 * 3.7 * 2.5) // 2.5 mAh
	if got := m.RemainingMAH(); got != 997 {
		t.Fatalf("remaining mAh = %v, want 997", got)
	}
	wantJ := 3.6 * 3.7 * 2 // quantized to 2 mAh
	if got := m.CumulativeJoules(); math.Abs(got-wantJ) > 1e-9 {
		t.Fatalf("cumulative = %v, want %v", got, wantJ)
	}
}

func TestExactMeter(t *testing.T) {
	b := sim.NewBattery(100)
	m := NewExactMeter(b)
	b.Drain(12.34)
	if got := m.RemainingJoules(); math.Abs(got-87.66) > 1e-9 {
		t.Fatalf("remaining = %v", got)
	}
	if got := m.CumulativeJoules(); math.Abs(got-12.34) > 1e-9 {
		t.Fatalf("cumulative = %v", got)
	}
	if m.Name() != "multimeter" {
		t.Fatalf("name = %q", m.Name())
	}
}

func newAdaptor(capacity float64) (*sim.VirtualClock, *sim.Battery, *GoalAdaptor) {
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	b := sim.NewBattery(capacity)
	return clock, b, NewGoalAdaptor(clock, NewExactMeter(b))
}

func TestNoGoalMeansZeroImportance(t *testing.T) {
	_, b, g := newAdaptor(1000)
	b.Drain(500)
	if got := g.Update(); got != 0 {
		t.Fatalf("importance with no goal = %v", got)
	}
	if got := g.Importance(); got != 0 {
		t.Fatalf("Importance() = %v", got)
	}
}

func TestAmbitiousGoalSeedsHighImportance(t *testing.T) {
	// Itsy-class battery (32 kJ) asked to last 10 hours: sustainable rate
	// ~0.9 W, well under the ~3.2 W reference -> high importance.
	_, _, g := newAdaptor(32_000)
	g.SetGoal(10 * time.Hour)
	if got := g.Importance(); got < 0.5 {
		t.Fatalf("ambitious-goal seed importance = %v, want >= 0.5", got)
	}
	// Trivial goal: a minute on a full battery -> zero-ish importance.
	_, _, g2 := newAdaptor(32_000)
	g2.SetGoal(time.Minute)
	if got := g2.Importance(); got != 0 {
		t.Fatalf("trivial-goal seed importance = %v, want 0", got)
	}
}

func TestFeedbackRaisesImportanceWhenDrainingFast(t *testing.T) {
	clock, b, g := newAdaptor(10_000)
	g.SetGoal(10 * time.Hour) // sustainable ~0.28 W
	start := g.Importance()
	// Drain at 5 W for a while: far above sustainable.
	for i := 0; i < 10; i++ {
		clock.Advance(time.Minute)
		b.Drain(5 * 60)
		g.Update()
	}
	if got := g.Importance(); got <= start && got != 1 {
		t.Fatalf("importance did not rise under heavy drain: %v (start %v)", got, start)
	}
	if got := g.Importance(); got != 1 {
		t.Fatalf("importance should saturate at 1, got %v", got)
	}
}

func TestFeedbackLowersImportanceWhenDrainingSlow(t *testing.T) {
	clock, b, g := newAdaptor(100_000)
	g.SetGoal(10 * time.Hour)
	seed := g.Importance()
	if seed <= 0.5 {
		t.Fatalf("seed importance = %v, want ambitious (> 0.5)", seed)
	}
	// Drain at a trickle: 0.1 W, well under sustainable (~2.8 W).
	for i := 0; i < 20; i++ {
		clock.Advance(time.Minute)
		b.Drain(0.1 * 60)
		g.Update()
	}
	if got := g.Importance(); got >= seed {
		t.Fatalf("importance did not fall under light drain: %v (seed %v)", got, seed)
	}
}

func TestSetImportancePinsUntilNewGoal(t *testing.T) {
	clock, b, g := newAdaptor(100_000)
	g.SetImportance(0.8)
	clock.Advance(time.Minute)
	b.Drain(1)
	if got := g.Update(); got != 0.8 {
		t.Fatalf("pinned importance = %v, want 0.8", got)
	}
	g.SetGoal(time.Minute) // trivial goal unpins and reseeds
	if got := g.Update(); got == 0.8 {
		t.Fatal("SetGoal should unpin importance")
	}
}

func TestGoalHorizonPassedClearsImportance(t *testing.T) {
	clock, b, g := newAdaptor(1000)
	g.SetGoal(time.Hour)
	clock.Advance(2 * time.Hour)
	b.Drain(1)
	if got := g.Update(); got != 0 {
		t.Fatalf("importance after goal horizon = %v, want 0", got)
	}
}

func TestEmptyBatterySaturatesImportance(t *testing.T) {
	clock, b, g := newAdaptor(100)
	g.SetGoal(10 * time.Hour)
	clock.Advance(time.Minute)
	b.Drain(1000) // empty
	if got := g.Update(); got != 1 {
		t.Fatalf("importance with empty battery = %v, want 1", got)
	}
}

func TestClearGoal(t *testing.T) {
	_, _, g := newAdaptor(1000)
	g.SetGoal(time.Hour)
	g.SetGoal(0)
	if _, ok := g.Goal(); ok {
		t.Fatal("goal should be cleared")
	}
	if got := g.Importance(); got != 0 {
		t.Fatalf("importance after clearing goal = %v", got)
	}
}

func TestSetImportanceClamps(t *testing.T) {
	_, _, g := newAdaptor(1000)
	g.SetImportance(4)
	if got := g.Importance(); got != 1 {
		t.Fatalf("importance = %v, want 1", got)
	}
	g.SetImportance(-2)
	if got := g.Importance(); got != 0 {
		t.Fatalf("importance = %v, want 0", got)
	}
}

// Property: importance stays in [0,1] under arbitrary drain/advance
// sequences.
func TestImportanceBoundedProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		clock, b, g := newAdaptor(50_000)
		g.SetGoal(5 * time.Hour)
		for _, s := range steps {
			clock.Advance(time.Duration(s) * time.Second)
			b.Drain(float64(s))
			c := g.Update()
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
