package energy

import (
	"sync"
	"time"

	"spectra/internal/sim"
)

// Default feedback tuning for the goal-directed adaptor.
const (
	// defaultGain scales how aggressively c follows the supply/demand
	// imbalance.
	defaultGain = 0.5
	// defaultSmoothing is the EWMA coefficient for the observed drain rate.
	defaultSmoothing = 0.3
)

// GoalAdaptor implements goal-directed energy adaptation (Flinn &
// Satyanarayanan, SOSP'99, used by the paper's battery monitor): the user
// states how long the battery must last; the adaptor compares the observed
// discharge rate to the rate the battery can sustain for the remaining goal
// time and adjusts a global importance parameter c in [0,1]. c = 0 means
// energy is free (wall power or trivially achievable goal); c = 1 means
// energy dominates every placement decision.
type GoalAdaptor struct {
	mu sync.Mutex

	clock sim.Clock
	meter Meter

	goal  time.Duration
	start time.Time

	c           float64
	gain        float64
	smoothing   float64
	rateW       float64 // EWMA of observed drain rate, watts
	lastUpdate  time.Time
	lastDrained float64
	hasGoal     bool
	// pinned freezes c at its current value until the next SetGoal,
	// letting experiments hold a fixed energy-importance condition.
	pinned bool
}

// NewGoalAdaptor returns an adaptor with no goal set (c = 0).
func NewGoalAdaptor(clock sim.Clock, meter Meter) *GoalAdaptor {
	now := clock.Now()
	return &GoalAdaptor{
		clock:       clock,
		meter:       meter,
		gain:        defaultGain,
		smoothing:   defaultSmoothing,
		lastUpdate:  now,
		lastDrained: meter.CumulativeJoules(),
	}
}

// SetGoal states that the battery must last for d starting now. A zero or
// negative duration clears the goal. The importance parameter is seeded
// from the ratio of the battery's current sustainable rate to a first
// drain-rate estimate once updates arrive; until then it starts at the
// feasibility-based initial value.
func (g *GoalAdaptor) SetGoal(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()

	now := g.clock.Now()
	g.start = now
	g.lastUpdate = now
	g.lastDrained = g.meter.CumulativeJoules()
	g.pinned = false
	if d <= 0 {
		g.hasGoal = false
		g.goal = 0
		g.c = 0
		return
	}
	g.hasGoal = true
	g.goal = d
	// Seed c from goal ambition: the longer the battery must last relative
	// to what it could sustain at its platform's typical draw, the higher
	// the initial importance. Refined by feedback as drain is observed.
	g.c = seedImportance(g.meter.RemainingJoules(), d)
}

// seedImportance maps (remaining energy, goal) to an initial c. The
// reference draw of 1 W per 10 kJ of remaining capacity makes the seed
// scale-free across the Itsy and laptop batteries.
func seedImportance(remainingJ float64, goal time.Duration) float64 {
	if remainingJ <= 0 {
		return 1
	}
	refW := remainingJ / 10_000
	sustainableW := remainingJ / goal.Seconds()
	// ratio >= 1: goal is easy at reference draw -> low importance.
	ratio := sustainableW / refW
	c := 1 - ratio
	return clamp01(c)
}

// Goal returns the current goal and whether one is set.
func (g *GoalAdaptor) Goal() (time.Duration, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.goal, g.hasGoal
}

// Importance returns the current energy-conservation importance c in [0,1]
// without updating the feedback loop.
func (g *GoalAdaptor) Importance() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.c
}

// SetImportance overrides c directly and pins it there until the next
// SetGoal. Experiments use this to hold the "energy is paramount"
// condition; live deployments rely on Update.
func (g *GoalAdaptor) SetImportance(c float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.c = clamp01(c)
	g.pinned = true
}

// Update observes the discharge since the last call and adjusts c: if the
// battery is draining faster than the goal can sustain, c rises; if slower,
// c decays. It returns the new importance.
func (g *GoalAdaptor) Update() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()

	if g.pinned {
		return g.c
	}
	if !g.hasGoal {
		g.c = 0
		return 0
	}

	now := g.clock.Now()
	remainingGoal := g.goal - now.Sub(g.start)
	if remainingGoal <= 0 {
		// Goal horizon passed: the battery survived; energy pressure off.
		g.c = 0
		return 0
	}
	remainingJ := g.meter.RemainingJoules()
	if remainingJ <= 0 {
		g.c = 1
		return 1
	}

	dt := now.Sub(g.lastUpdate)
	if dt <= 0 {
		return g.c // no new information since the last adjustment
	}
	drained := g.meter.CumulativeJoules()
	instRate := (drained - g.lastDrained) / dt.Seconds()
	if instRate < 0 {
		instRate = 0
	}
	if g.rateW == 0 {
		g.rateW = instRate
	} else {
		g.rateW = g.smoothing*instRate + (1-g.smoothing)*g.rateW
	}
	g.lastUpdate = now
	g.lastDrained = drained

	sustainableW := remainingJ / remainingGoal.Seconds()
	if g.rateW <= 0 {
		return g.c // no demand observed yet; keep the seed
	}
	imbalance := (g.rateW - sustainableW) / sustainableW
	g.c = clamp01(g.c + g.gain*imbalance)
	return g.c
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
