// Package energy implements Spectra's energy management: the battery
// measurement drivers (ACPI and SmartBattery styles, paper §3.3.3) and
// goal-directed adaptation, which turns a user-specified battery-lifetime
// goal into the energy-conservation importance parameter c in [0,1] used by
// the utility function.
package energy

import (
	"math"

	"spectra/internal/sim"
)

// Meter abstracts a battery measurement source. The battery monitor is
// written against this interface so the measurement methodology can be
// swapped per platform, mirroring the paper's separate ACPI and
// SmartBattery resource monitors.
type Meter interface {
	// Name identifies the measurement methodology.
	Name() string
	// RemainingJoules reports the energy left in the battery.
	RemainingJoules() float64
	// CumulativeJoules reports total energy drawn since boot; per-operation
	// energy is measured as a difference of this counter.
	CumulativeJoules() float64
}

// ACPIMeter reads a battery through an ACPI-style interface: capacities in
// milliwatt-hours. Readings are quantized to 1 mWh, as the ACPI tables are.
type ACPIMeter struct {
	battery *sim.Battery
}

var _ Meter = (*ACPIMeter)(nil)

// NewACPIMeter returns an ACPI-style meter over the battery.
func NewACPIMeter(b *sim.Battery) *ACPIMeter {
	return &ACPIMeter{battery: b}
}

// Name implements Meter.
func (m *ACPIMeter) Name() string { return "acpi" }

// RemainingJoules implements Meter with mWh quantization.
func (m *ACPIMeter) RemainingJoules() float64 {
	return mwhToJoules(math.Floor(joulesToMWH(m.battery.RemainingJoules())))
}

// CumulativeJoules implements Meter with mWh quantization.
func (m *ACPIMeter) CumulativeJoules() float64 {
	return mwhToJoules(math.Floor(joulesToMWH(m.battery.DrainedJoules())))
}

// RemainingMWH reports remaining capacity in milliwatt-hours, as the ACPI
// battery information table exposes it.
func (m *ACPIMeter) RemainingMWH() float64 {
	return math.Floor(joulesToMWH(m.battery.RemainingJoules()))
}

// SmartBatteryMeter reads a battery through a Smart Battery System
// interface: charge in milliamp-hours at the pack's nominal voltage,
// quantized to 1 mAh.
type SmartBatteryMeter struct {
	battery *sim.Battery
}

var _ Meter = (*SmartBatteryMeter)(nil)

// NewSmartBatteryMeter returns a SmartBattery-style meter over the battery.
func NewSmartBatteryMeter(b *sim.Battery) *SmartBatteryMeter {
	return &SmartBatteryMeter{battery: b}
}

// Name implements Meter.
func (m *SmartBatteryMeter) Name() string { return "smartbattery" }

// RemainingJoules implements Meter with mAh quantization.
func (m *SmartBatteryMeter) RemainingJoules() float64 {
	v := m.battery.Voltage()
	return mahToJoules(math.Floor(joulesToMAH(m.battery.RemainingJoules(), v)), v)
}

// CumulativeJoules implements Meter with mAh quantization.
func (m *SmartBatteryMeter) CumulativeJoules() float64 {
	v := m.battery.Voltage()
	return mahToJoules(math.Floor(joulesToMAH(m.battery.DrainedJoules(), v)), v)
}

// RemainingMAH reports remaining charge in milliamp-hours.
func (m *SmartBatteryMeter) RemainingMAH() float64 {
	return math.Floor(joulesToMAH(m.battery.RemainingJoules(), m.battery.Voltage()))
}

// ExactMeter reads the battery without quantization. The paper measured
// the 560X with a digital multimeter because it lacked energy-management
// support; this meter plays that role in the Latex and Pangloss
// experiments.
type ExactMeter struct {
	battery *sim.Battery
}

var _ Meter = (*ExactMeter)(nil)

// NewExactMeter returns an unquantized meter over the battery.
func NewExactMeter(b *sim.Battery) *ExactMeter {
	return &ExactMeter{battery: b}
}

// Name implements Meter.
func (m *ExactMeter) Name() string { return "multimeter" }

// RemainingJoules implements Meter.
func (m *ExactMeter) RemainingJoules() float64 { return m.battery.RemainingJoules() }

// CumulativeJoules implements Meter.
func (m *ExactMeter) CumulativeJoules() float64 { return m.battery.DrainedJoules() }

func joulesToMWH(j float64) float64 { return j / 3.6 }

func mwhToJoules(mwh float64) float64 { return mwh * 3.6 }

func joulesToMAH(j, voltage float64) float64 {
	if voltage <= 0 {
		return 0
	}
	return j / (3.6 * voltage)
}

func mahToJoules(mah, voltage float64) float64 { return mah * 3.6 * voltage }
