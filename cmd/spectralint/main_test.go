package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module whose single package carries a
// nilsafe violation (the one suite analyzer that is not scoped to spectra
// import paths, so it fires in any module).
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":  "module tmpmod\n\ngo 1.23\n",
		"main.go": src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const violating = `package main

// Handle is nil-callable.
//
//lint:nilsafe
type Handle struct{ n int }

// Inc is missing its guard.
func (h *Handle) Inc() { h.n++ }

func main() {}
`

const suppressed = `package main

// Handle is nil-callable.
//
//lint:nilsafe
type Handle struct{ n int }

// Inc is missing its guard, but the author vouched for it.
//
//lint:allow nilsafe exercising the driver's suppression accounting
func (h *Handle) Inc() { h.n++ }

func main() {}
`

const clean = `package main

// Handle is nil-callable.
//
//lint:nilsafe
type Handle struct{ n int }

// Inc carries the guard.
func (h *Handle) Inc() {
	if h == nil {
		return
	}
	h.n++
}

func main() {}
`

func TestFindingFailsTheRun(t *testing.T) {
	dir := writeModule(t, violating)
	var stdout, stderr bytes.Buffer
	code := Main(dir, []string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "nilsafe") || !strings.Contains(out, "nil-receiver guard") {
		t.Errorf("finding not printed:\n%s", out)
	}
	if !strings.Contains(out, "1 finding(s)") {
		t.Errorf("summary line missing or wrong:\n%s", out)
	}
}

func TestSuppressionClearsTheRun(t *testing.T) {
	dir := writeModule(t, suppressed)
	var stdout, stderr bytes.Buffer
	code := Main(dir, []string{"./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "1 suppressed") {
		t.Errorf("suppression not counted:\n%s", stdout.String())
	}
}

func TestCleanRun(t *testing.T) {
	dir := writeModule(t, clean)
	var stdout, stderr bytes.Buffer
	if code := Main(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
}

func TestJSONReport(t *testing.T) {
	dir := writeModule(t, violating)
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	code := Main(dir, []string{"-json", reportPath, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Packages != 1 || len(rep.Findings) != 1 || rep.Suppressed != 0 {
		t.Fatalf("report = %+v, want 1 package, 1 finding, 0 suppressed", rep)
	}
	f := rep.Findings[0]
	if f.Analyzer != "nilsafe" || f.File != "main.go" || f.Line == 0 {
		t.Errorf("finding = %+v", f)
	}
}

func TestLoadFailure(t *testing.T) {
	dir := t.TempDir() // no go.mod, no packages
	var stdout, stderr bytes.Buffer
	if code := Main(dir, []string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
