// Command spectralint runs Spectra's static-analysis suite — the
// invariants the compiler cannot see: virtual-clock discipline in
// deterministic packages, nil-receiver guards on observability handles,
// no blocking under mutexes, a coherent metric namespace, classified
// errors at the RPC boundary, and the interprocedural invariants of the
// deadline work: context propagation on request paths (ctxflow),
// goroutine termination (goroleak), a cycle-free lock order (lockorder),
// and registry-resolved metric/span names (spanmetric). The driver keeps
// one fact store for the whole run and visits packages in dependency
// order, so the interprocedural analyzers see across package boundaries.
//
// Usage:
//
//	go run ./cmd/spectralint [-json report.json] [-budget lint-budget.json] [packages...]
//	go run ./cmd/spectralint -suppressions [packages...]
//
// With no packages it lints ./.... It prints one line per finding
// (file:line:col: analyzer: message), honors //lint:allow suppressions,
// and exits 1 if any finding survives, 2 on a load failure — so CI can
// gate on it. -json additionally writes a machine-readable report for
// artifact upload.
//
// -suppressions inventories the suppression debt instead of linting: one
// line per //lint:allow directive (file:line: analyzers: reason). -budget
// ratchets that debt: the run fails if the directive count exceeds the
// checked-in budget file's allowance, so new suppressions must either
// displace old ones or raise the budget in a reviewed commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spectra/internal/lint"
	"spectra/internal/lint/analysis"
	"spectra/internal/lint/load"
)

func main() {
	os.Exit(Main(".", os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one surviving diagnostic, in report form.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the -json output document.
type report struct {
	// Packages is how many packages were analyzed.
	Packages int `json:"packages"`
	// Findings are the surviving diagnostics, in file order.
	Findings []finding `json:"findings"`
	// Suppressed counts diagnostics silenced by //lint:allow directives.
	Suppressed int `json:"suppressed"`
	// Directives counts //lint:allow directives present in the analyzed
	// packages — the suppression debt the -budget ratchet bounds.
	Directives int `json:"directives"`
}

// budget is the checked-in lint-budget.json document.
type budget struct {
	// Suppressions is the maximum allowed //lint:allow directive count.
	Suppressions int `json:"suppressions"`
}

// Main is the testable entry point: it lints the given patterns relative
// to dir and returns the process exit code.
func Main(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spectralint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonPath := fs.String("json", "", "write a JSON report to this `file`")
	budgetPath := fs.String("budget", "", "enforce the suppression budget in this `file`")
	listSup := fs.Bool("suppressions", false, "list //lint:allow directives instead of linting")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := load.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "spectralint: %v\n", err)
		return 2
	}

	var directives []analysis.Directive
	for _, pkg := range prog.Roots {
		directives = append(directives, analysis.ListDirectives(prog.Fset, pkg.Files)...)
	}
	sort.Slice(directives, func(i, j int) bool {
		if directives[i].File != directives[j].File {
			return directives[i].File < directives[j].File
		}
		return directives[i].Line < directives[j].Line
	})

	if *listSup {
		for _, d := range directives {
			reason := d.Reason
			if reason == "" {
				reason = "(no justification)"
			}
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n",
				relPath(dir, d.File), d.Line, strings.Join(d.Analyzers, ","), reason)
		}
		fmt.Fprintf(stdout, "spectralint: %d suppression directive(s) in %d package(s)\n",
			len(directives), len(prog.Roots))
		return 0
	}

	rep := report{Packages: len(prog.Roots), Directives: len(directives)}
	suite := lint.Suite()
	// One fact store for the run: dependency order guarantees a package's
	// facts are exported before any importer is analyzed.
	facts := analysis.NewFactStore()
	for _, pkg := range prog.Roots {
		sup := analysis.CollectSuppressions(prog.Fset, pkg.Files)
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "spectralint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
			for _, d := range pass.Diagnostics() {
				pos := prog.Fset.Position(d.Pos)
				if sup.Allows(a.Name, pos) {
					rep.Suppressed++
					continue
				}
				rep.Findings = append(rep.Findings, finding{
					File:     relPath(dir, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
		}
	}

	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	for _, f := range rep.Findings {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	fmt.Fprintf(stdout, "spectralint: %d package(s), %d finding(s), %d suppressed\n",
		rep.Packages, len(rep.Findings), rep.Suppressed)

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, rep); err != nil {
			fmt.Fprintf(stderr, "spectralint: %v\n", err)
			return 2
		}
	}
	overBudget := false
	if *budgetPath != "" {
		allowed, err := readBudget(*budgetPath)
		if err != nil {
			fmt.Fprintf(stderr, "spectralint: %v\n", err)
			return 2
		}
		switch {
		case len(directives) > allowed:
			fmt.Fprintf(stderr,
				"spectralint: suppression budget exceeded: %d //lint:allow directive(s), budget allows %d; remove a suppression or raise the budget in %s in a reviewed commit\n",
				len(directives), allowed, *budgetPath)
			overBudget = true
		case len(directives) < allowed:
			fmt.Fprintf(stdout,
				"spectralint: suppression debt is %d, below the budget of %d; consider lowering %s to lock in the improvement\n",
				len(directives), allowed, *budgetPath)
		}
	}
	if len(rep.Findings) > 0 || overBudget {
		return 1
	}
	return 0
}

// readBudget parses the suppression-budget document.
func readBudget(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var b budget
	if err := json.Unmarshal(data, &b); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	return b.Suppressions, nil
}

// relPath shortens filename relative to dir when possible, for stable,
// readable report paths.
func relPath(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || rel == "" || rel[0] == '.' && len(rel) > 1 && rel[1] == '.' {
		return filename
	}
	return rel
}

// writeReport writes the JSON report document.
func writeReport(path string, rep report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
