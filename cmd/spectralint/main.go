// Command spectralint runs Spectra's static-analysis suite — the
// invariants the compiler cannot see: virtual-clock discipline in
// deterministic packages, nil-receiver guards on observability handles,
// no blocking under mutexes, a coherent metric namespace, and classified
// errors at the RPC boundary.
//
// Usage:
//
//	go run ./cmd/spectralint [-json report.json] [packages...]
//
// With no packages it lints ./.... It prints one line per finding
// (file:line:col: analyzer: message), honors //lint:allow suppressions,
// and exits 1 if any finding survives, 2 on a load failure — so CI can
// gate on it. -json additionally writes a machine-readable report for
// artifact upload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"spectra/internal/lint"
	"spectra/internal/lint/analysis"
	"spectra/internal/lint/load"
)

func main() {
	os.Exit(Main(".", os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one surviving diagnostic, in report form.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the -json output document.
type report struct {
	// Packages is how many packages were analyzed.
	Packages int `json:"packages"`
	// Findings are the surviving diagnostics, in file order.
	Findings []finding `json:"findings"`
	// Suppressed counts diagnostics silenced by //lint:allow directives.
	Suppressed int `json:"suppressed"`
}

// Main is the testable entry point: it lints the given patterns relative
// to dir and returns the process exit code.
func Main(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spectralint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonPath := fs.String("json", "", "write a JSON report to this `file`")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := load.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "spectralint: %v\n", err)
		return 2
	}

	rep := report{Packages: len(prog.Roots)}
	suite := lint.Suite()
	for _, pkg := range prog.Roots {
		sup := analysis.CollectSuppressions(prog.Fset, pkg.Files)
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "spectralint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
			for _, d := range pass.Diagnostics() {
				pos := prog.Fset.Position(d.Pos)
				if sup.Allows(a.Name, pos) {
					rep.Suppressed++
					continue
				}
				rep.Findings = append(rep.Findings, finding{
					File:     relPath(dir, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
		}
	}

	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	for _, f := range rep.Findings {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	fmt.Fprintf(stdout, "spectralint: %d package(s), %d finding(s), %d suppressed\n",
		rep.Packages, len(rep.Findings), rep.Suppressed)

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, rep); err != nil {
			fmt.Fprintf(stderr, "spectralint: %v\n", err)
			return 2
		}
	}
	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

// relPath shortens filename relative to dir when possible, for stable,
// readable report paths.
func relPath(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || rel == "" || rel[0] == '.' && len(rel) > 1 && rel[1] == '.' {
		return filename
	}
	return rel
}

// writeReport writes the JSON report document.
func writeReport(path string, rep report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
