package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spectra"
	"spectra/internal/obs"
	"spectra/internal/rpc"
	"spectra/internal/sim"
)

// startServer runs an in-process spectrad-equivalent for spectractl tests,
// returning the RPC address and an observer with a retained-trace sink and
// time-series recorder serving the debug endpoint.
func startServer(t *testing.T) (addr, debugAddr string) {
	t.Helper()
	machine := spectra.NewMachine(spectra.MachineConfig{
		Name: "ctl-test", SpeedMHz: 50_000, OnWallPower: true,
	})
	node := spectra.NewNode(machine, nil, nil)
	srv := spectra.NewServer("ctl-test", node, sim.RealClock{})
	srv.Register("spectra.work", func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: 10})
		return []byte("done"), nil
	})

	o := spectra.NewObserver()
	o.Sink = spectra.NewMemoryTraceSink(64)
	o.TimeSeries = obs.NewTimeSeriesRecorder(0)
	o.TimeSeries.RecordValue("local.cpu.availMHz", time.Now(), 50_000)
	srv.SetObserver(o)

	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	debugAddr, stop, err := o.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stop() })
	return addr, debugAddr
}

// ctl runs spectractl with the given flags and returns its output.
func ctl(t *testing.T, opts options, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	opts.out = &buf
	if opts.timeout == 0 {
		opts.timeout = 5 * time.Second
	}
	err := run(opts, args)
	return buf.String(), err
}

func TestCtlStatus(t *testing.T) {
	addr, _ := startServer(t)
	out, err := ctl(t, options{server: addr}, "status")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ctl-test") {
		t.Fatalf("status output missing server name:\n%s", out)
	}
}

func TestCtlPing(t *testing.T) {
	addr, _ := startServer(t)
	out, err := ctl(t, options{server: addr}, "ping")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mean:") {
		t.Fatalf("ping output missing mean:\n%s", out)
	}
}

func TestCtlWork(t *testing.T) {
	addr, _ := startServer(t)
	if _, err := ctl(t, options{server: addr}, "work", "-mc", "10"); err != nil {
		t.Fatal(err)
	}
	out, err := ctl(t, options{server: addr}, "work", "-mc", "5", "-fp")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "executed 5 Mc") {
		t.Fatalf("work output missing summary:\n%s", out)
	}
}

func TestCtlErrors(t *testing.T) {
	addr, _ := startServer(t)
	if _, err := ctl(t, options{server: addr}); err == nil {
		t.Fatal("missing command accepted")
	}
	if _, err := ctl(t, options{server: addr}, "bogus"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := ctl(t, options{server: "127.0.0.1:1"}, "status"); err == nil {
		t.Fatal("dead server accepted")
	}
}

// TestCtlExitCodes pins the dial-versus-call exit-code split: an unreachable
// server is exit 2, a reachable server rejecting the call is exit 3, and
// usage errors are exit 1.
func TestCtlExitCodes(t *testing.T) {
	addr, _ := startServer(t)
	_, err := ctl(t, options{server: "127.0.0.1:1"}, "status")
	if err == nil || exitCode(err) != exitDial {
		t.Fatalf("dial failure: got err=%v code=%d, want code %d", err, exitCode(err), exitDial)
	}
	// Unknown service: the server is reached, the call fails remotely.
	client, derr := rpc.Dial(addr, nil)
	if derr != nil {
		t.Fatal(derr)
	}
	defer client.Close()
	_, _, cerr := client.Call("no.such.service", "run", nil)
	if cerr == nil || exitCode(cerr) != exitCall {
		t.Fatalf("remote failure: got err=%v code=%d, want code %d", cerr, exitCode(cerr), exitCall)
	}
	_, uerr := ctl(t, options{}, "nope")
	if uerr == nil || exitCode(uerr) != 1 {
		t.Fatalf("usage error should exit 1, got %v", uerr)
	}
}

func TestCtlTracesFromDebugEndpoint(t *testing.T) {
	addr, debugAddr := startServer(t)
	// Drive a request so the server emits a trace with spans.
	if _, err := ctl(t, options{server: addr}, "work", "-mc", "5"); err != nil {
		t.Fatal(err)
	}
	out, err := ctl(t, options{debug: debugAddr}, "traces")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "spectra.work/run") {
		t.Fatalf("traces output missing the work trace:\n%s", out)
	}
	if !strings.Contains(out, "server.exec") {
		t.Fatalf("traces output missing server-side spans:\n%s", out)
	}
}

func TestCtlTracesFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.jsonl")
	sink, err := obs.NewJSONLSink(path, obs.JSONLSinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	sink.Emit(&obs.DecisionTrace{
		OpID:      7,
		Operation: "file-op",
		Begin:     begin,
		End:       begin.Add(40 * time.Millisecond),
		Spans: []obs.Span{
			{ID: 0, Parent: -1, Name: obs.SpanSolve, Start: begin, End: begin.Add(time.Millisecond)},
			{ID: 1, Parent: 0, Name: obs.SpanRPC, Start: begin.Add(time.Millisecond), End: begin.Add(30 * time.Millisecond)},
		},
	})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ctl(t, options{file: path}, "traces", "-op", "file-op")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"file-op", obs.SpanSolve, obs.SpanRPC} {
		if !strings.Contains(out, want) {
			t.Fatalf("traces output missing %q:\n%s", want, out)
		}
	}
	// The rpc span must be nested under solve (deeper indentation).
	if !strings.Contains(out, "      "+obs.SpanRPC) {
		t.Fatalf("rpc span not nested under parent:\n%s", out)
	}
}

func TestCtlTop(t *testing.T) {
	addr, debugAddr := startServer(t)
	for i := 0; i < 3; i++ {
		if _, err := ctl(t, options{server: addr}, "work", "-mc", "2"); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ctl(t, options{debug: debugAddr}, "top")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "server.exec") {
		t.Fatalf("top output missing server.exec aggregate:\n%s", out)
	}
	if !strings.Contains(out, "total") {
		t.Fatalf("top output missing header:\n%s", out)
	}
	// The live endpoint leads with the tail-control line: queue depth next
	// to the deadline shed and hedge rates.
	for _, want := range []string{"queue depth", "deadline shed", "hedges", "pool exhausted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("top output missing %q in the metrics header:\n%s", want, out)
		}
	}
	// And the decision-cache line, so a glance shows whether Begins are
	// warm or deliberating.
	for _, want := range []string{"decision cache", "hits", "entries"} {
		if !strings.Contains(out, want) {
			t.Fatalf("top output missing %q in the metrics header:\n%s", want, out)
		}
	}
}

func TestCtlTimeseries(t *testing.T) {
	_, debugAddr := startServer(t)
	out, err := ctl(t, options{debug: debugAddr}, "timeseries")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "local.cpu.availMHz") {
		t.Fatalf("timeseries summary missing series:\n%s", out)
	}
	out, err = ctl(t, options{debug: debugAddr}, "timeseries", "-series", "local.cpu.availMHz")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seq=") {
		t.Fatalf("timeseries points missing seq:\n%s", out)
	}
}

func TestCtlAccuracyEmpty(t *testing.T) {
	_, debugAddr := startServer(t)
	out, err := ctl(t, options{debug: debugAddr}, "accuracy")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no accuracy data") && !strings.Contains(out, "operation") {
		t.Fatalf("unexpected accuracy output:\n%s", out)
	}
}

func TestCtlObsCommandsNeedSource(t *testing.T) {
	if _, err := ctl(t, options{}, "traces"); err == nil {
		t.Fatal("traces without -debug or -file accepted")
	}
	if _, err := ctl(t, options{}, "timeseries"); err == nil {
		t.Fatal("timeseries without -debug accepted")
	}
	if _, err := ctl(t, options{}, "accuracy"); err == nil {
		t.Fatal("accuracy without -debug accepted")
	}
}
