package main

import (
	"testing"

	"spectra"
	"spectra/internal/sim"
)

// startServer runs an in-process spectrad-equivalent for spectractl tests.
func startServer(t *testing.T) string {
	t.Helper()
	machine := spectra.NewMachine(spectra.MachineConfig{
		Name: "ctl-test", SpeedMHz: 50_000, OnWallPower: true,
	})
	node := spectra.NewNode(machine, nil, nil)
	srv := spectra.NewServer("ctl-test", node, sim.RealClock{})
	srv.Register("spectra.work", func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: 10})
		return []byte("done"), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestCtlStatus(t *testing.T) {
	addr := startServer(t)
	if err := run(addr, []string{"status"}); err != nil {
		t.Fatal(err)
	}
}

func TestCtlPing(t *testing.T) {
	addr := startServer(t)
	if err := run(addr, []string{"ping"}); err != nil {
		t.Fatal(err)
	}
}

func TestCtlWork(t *testing.T) {
	addr := startServer(t)
	if err := run(addr, []string{"work", "-mc", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run(addr, []string{"work", "-mc", "5", "-fp"}); err != nil {
		t.Fatal(err)
	}
}

func TestCtlErrors(t *testing.T) {
	addr := startServer(t)
	if err := run(addr, nil); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run(addr, []string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run("127.0.0.1:1", []string{"status"}); err == nil {
		t.Fatal("dead server accepted")
	}
}
