// Command spectractl inspects and exercises a running spectrad server.
//
// Usage:
//
//	spectractl -server 127.0.0.1:7009 status
//	spectractl -server 127.0.0.1:7009 ping
//	spectractl -server 127.0.0.1:7009 work -mc 500
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	"spectra/internal/rpc"
)

func main() {
	server := flag.String("server", "127.0.0.1:7009", "spectrad address")
	flag.Parse()

	if err := run(*server, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "spectractl:", err)
		os.Exit(1)
	}
}

func run(server string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: spectractl -server ADDR {status|ping|work [-mc N]}")
	}
	client, err := rpc.Dial(server, nil)
	if err != nil {
		return err
	}
	defer client.Close()

	switch args[0] {
	case "status":
		return status(client)
	case "ping":
		return ping(client)
	case "work":
		return work(client, args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func status(client *rpc.Client) error {
	st, err := client.Status()
	if err != nil {
		return err
	}
	fmt.Printf("server:      %s\n", st.Name)
	fmt.Printf("cpu:         %.0f MHz (%.0f MHz available, load %.2f)\n",
		st.SpeedMHz, st.AvailMHz, st.LoadFraction)
	fmt.Printf("fetch rate:  %.0f B/s\n", st.FetchRateBps)
	fmt.Printf("services:    %v\n", st.Services)
	if len(st.CachedFiles) > 0 {
		fmt.Printf("cached:      %d files\n", len(st.CachedFiles))
	}
	return nil
}

func ping(client *rpc.Client) error {
	const count = 5
	var total time.Duration
	for i := 0; i < count; i++ {
		d, err := client.Ping()
		if err != nil {
			return err
		}
		total += d
		fmt.Printf("ping %d: %v\n", i+1, d.Round(time.Microsecond))
	}
	fmt.Printf("mean: %v\n", (total / count).Round(time.Microsecond))
	return nil
}

func work(client *rpc.Client, args []string) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	mc := fs.Uint64("mc", 100, "megacycles of work to request")
	fp := fs.Bool("fp", false, "request floating-point work")
	if err := fs.Parse(args); err != nil {
		return err
	}
	payload := make([]byte, 9)
	binary.BigEndian.PutUint64(payload, *mc)
	if *fp {
		payload[8] = 1
	}
	start := time.Now()
	_, usage, err := client.Call("spectra.work", "run", payload)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("executed %d Mc in %v", *mc, elapsed.Round(time.Millisecond))
	if usage != nil {
		fmt.Printf(" (server reports %.0f Mc consumed)", usage.CPUMegacycles)
	}
	fmt.Println()
	return nil
}
