// Command spectractl inspects and exercises a running spectrad server: the
// RPC commands (status, ping, work) talk to the spectrad RPC port, and the
// observability commands (traces, top, accuracy, timeseries) read either a
// live /debug endpoint or a flight-recorder JSONL file.
//
// Usage:
//
//	spectractl -server 127.0.0.1:7009 status
//	spectractl -server 127.0.0.1:7009 -timeout 5s ping
//	spectractl -server 127.0.0.1:7009 work -mc 500
//	spectractl -debug 127.0.0.1:6060 traces -n 3
//	spectractl -file spectrad.jsonl top
//	spectractl -debug 127.0.0.1:6060 accuracy
//	spectractl -debug 127.0.0.1:6060 timeseries -series local.cpu.availMHz
//
// Exit codes: 1 usage or local failure, 2 could not dial the server, 3 the
// server was reached but the call failed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"spectra/internal/obs"
	"spectra/internal/rpc"
	"spectra/internal/wire"
)

// Exit codes (beyond the usual 0/1).
const (
	exitDial = 2 // could not establish a connection to the server
	exitCall = 3 // connected, but the exchange failed
)

func main() {
	opts := options{out: os.Stdout}
	flag.StringVar(&opts.server, "server", "127.0.0.1:7009", "spectrad RPC address (status, ping, work)")
	flag.DurationVar(&opts.timeout, "timeout", 10*time.Second, "per-exchange RPC deadline")
	flag.StringVar(&opts.debug, "debug", "", "debug endpoint (host:port or URL) for traces, top, accuracy, timeseries")
	flag.StringVar(&opts.file, "file", "", "flight-recorder JSONL file for traces and top")
	flag.Parse()

	if err := run(opts, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "spectractl:", err)
		os.Exit(exitCode(err))
	}
}

// options carries the global flags; out is swapped by tests.
type options struct {
	server  string
	timeout time.Duration
	debug   string
	file    string
	out     io.Writer
}

// exitCode classifies a failure: dial failures (the server could not be
// reached at all) exit 2, call failures (reached, then the exchange or the
// service failed) exit 3, everything else 1.
func exitCode(err error) int {
	var terr *rpc.TransportError
	if errors.As(err, &terr) {
		if terr.Op == "dial" {
			return exitDial
		}
		return exitCall
	}
	var rerr *rpc.RemoteError
	if errors.As(err, &rerr) {
		return exitCall
	}
	return 1
}

func run(opts options, args []string) error {
	if opts.out == nil {
		opts.out = os.Stdout
	}
	if len(args) == 0 {
		return errors.New("usage: spectractl [flags] {status|ping|work|traces|top|accuracy|timeseries}")
	}
	switch args[0] {
	case "status", "ping", "work":
		client, err := rpc.Dial(opts.server, nil)
		if err != nil {
			return err
		}
		defer client.Close()
		client.SetTimeout(opts.timeout)
		switch args[0] {
		case "status":
			return status(opts.out, client)
		case "ping":
			return ping(opts.out, client)
		default:
			return work(opts.out, client, args[1:])
		}
	case "traces":
		return traces(opts, args[1:])
	case "top":
		return top(opts, args[1:])
	case "accuracy":
		return accuracy(opts)
	case "timeseries":
		return timeseries(opts, args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func status(out io.Writer, client *rpc.Client) error {
	st, err := client.Status()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "server:      %s\n", st.Name)
	fmt.Fprintf(out, "cpu:         %.0f MHz (%.0f MHz available, load %.2f)\n",
		st.SpeedMHz, st.AvailMHz, st.LoadFraction)
	fmt.Fprintf(out, "fetch rate:  %.0f B/s\n", st.FetchRateBps)
	fmt.Fprintf(out, "services:    %v\n", st.Services)
	if len(st.CachedFiles) > 0 {
		fmt.Fprintf(out, "cached:      %d files\n", len(st.CachedFiles))
	}
	return nil
}

func ping(out io.Writer, client *rpc.Client) error {
	const count = 5
	var total time.Duration
	for i := 0; i < count; i++ {
		d, err := client.Ping()
		if err != nil {
			return err
		}
		total += d
		fmt.Fprintf(out, "ping %d: %v\n", i+1, d.Round(time.Microsecond))
	}
	fmt.Fprintf(out, "mean: %v\n", (total / count).Round(time.Microsecond))
	return nil
}

func work(out io.Writer, client *rpc.Client, args []string) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	mc := fs.Uint64("mc", 100, "megacycles of work to request")
	fp := fs.Bool("fp", false, "request floating-point work")
	if err := fs.Parse(args); err != nil {
		return err
	}
	payload := wire.WorkRequest{Megacycles: *mc, FloatingPoint: *fp}.Encode()
	start := time.Now()
	_, usage, err := client.Call("spectra.work", "run", payload)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "executed %d Mc in %v", *mc, elapsed.Round(time.Millisecond))
	if usage != nil {
		fmt.Fprintf(out, " (server reports %.0f Mc consumed)", usage.CPUMegacycles)
	}
	fmt.Fprintln(out)
	return nil
}

// loadTraces reads decision traces from the -file JSONL flight recorder or
// the -debug endpoint's /debug/traces route.
func loadTraces(opts options) ([]*obs.DecisionTrace, error) {
	if opts.file != "" {
		traces, skipped, err := obs.ReadTraceFile(opts.file)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(opts.out, "(%d unparsable lines skipped)\n", skipped)
		}
		return traces, nil
	}
	if opts.debug != "" {
		var traces []*obs.DecisionTrace
		if err := fetchJSON(opts.debug, "/debug/traces", &traces); err != nil {
			return nil, err
		}
		return traces, nil
	}
	return nil, errors.New("traces need -file FILE.jsonl or -debug ADDR")
}

func traces(opts options, args []string) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	n := fs.Int("n", 5, "show the newest N traces (0 = all)")
	op := fs.String("op", "", "only traces of this operation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	all, err := loadTraces(opts)
	if err != nil {
		return err
	}
	if *op != "" {
		kept := all[:0:0]
		for _, t := range all {
			if t.Operation == *op {
				kept = append(kept, t)
			}
		}
		all = kept
	}
	if *n > 0 && len(all) > *n {
		all = all[len(all)-*n:]
	}
	if len(all) == 0 {
		fmt.Fprintln(opts.out, "no traces")
		return nil
	}
	for _, t := range all {
		printTrace(opts.out, t)
	}
	return nil
}

// printTrace pretty-prints one decision trace with its span tree.
func printTrace(out io.Writer, t *obs.DecisionTrace) {
	headline := fmt.Sprintf("#%d %s", t.OpID, t.Operation)
	if t.Forced {
		headline += " (forced)"
	}
	if t.Aborted {
		headline += " (aborted)"
	}
	fmt.Fprintf(out, "%s\n", headline)
	fmt.Fprintf(out, "  begin=%s elapsed=%v", t.Begin.Format(time.RFC3339Nano), t.End.Sub(t.Begin).Round(time.Microsecond))
	chosen := t.Chosen.Plan
	if t.Chosen.Server != "" {
		chosen = t.Chosen.Server + "/" + chosen
	}
	if chosen != "" {
		fmt.Fprintf(out, " chosen=%s", chosen)
	}
	if t.Candidates > 0 {
		fmt.Fprintf(out, " candidates=%d evals=%d", t.Candidates, t.Evaluations)
	}
	if t.SnapshotSeq > 0 {
		fmt.Fprintf(out, " snapshotSeq=%d", t.SnapshotSeq)
	}
	fmt.Fprintln(out)
	if len(t.PredictionError) > 0 {
		keys := make([]string, 0, len(t.PredictionError))
		for k := range t.PredictionError {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%.2f", k, t.PredictionError[k]))
		}
		fmt.Fprintf(out, "  prediction error: %s\n", strings.Join(parts, " "))
	}
	for _, f := range t.Failovers {
		to := f.To
		if to == "" {
			to = "(local)"
		}
		fmt.Fprintf(out, "  failover: %s %s -> %s\n", f.OpType, f.From, to)
	}
	if len(t.Spans) > 0 {
		fmt.Fprintln(out, "  spans:")
		printSpanTree(out, t, -1, 2)
	}
}

// printSpanTree prints the spans whose Parent is parent, indented, then
// recurses into each one's children.
func printSpanTree(out io.Writer, t *obs.DecisionTrace, parent, depth int) {
	for _, s := range t.Spans {
		if s.Parent != parent {
			continue
		}
		label := s.Name
		if s.Origin != "" {
			label += " [" + s.Origin + "]"
		}
		fmt.Fprintf(out, "%s%-*s +%v %v\n",
			strings.Repeat("  ", depth),
			30-2*depth, label,
			s.Start.Sub(t.Begin).Round(time.Microsecond),
			s.Cost().Round(time.Microsecond))
		printSpanTree(out, t, s.ID, depth+1)
	}
}

// top aggregates span costs across traces: the slowest phases by total
// time, with counts and per-span mean and max. Against a live debug
// endpoint it leads with the tail-control gauges — queue depth next to the
// deadline shed and hedge rates — so one screen answers whether the tail
// is being managed (hedges winning, expired work shed) or merely suffered.
func top(opts options, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	n := fs.Int("n", 10, "show the N costliest phases")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opts.debug != "" {
		var snap obs.RegistrySnapshot
		if err := fetchJSON(opts.debug, "/debug/metrics", &snap); err != nil {
			fmt.Fprintf(opts.out, "metrics unavailable: %v\n", err)
		} else {
			fmt.Fprintf(opts.out,
				"queue depth %.0f  deadline shed %d  expired %d  hedges %d (wins %d)  pool exhausted %d\n",
				snap.Gauges[obs.MServerQueueDepth],
				snap.Counters[obs.MServerDeadlineShed],
				snap.Counters[obs.MDeadlineExceeded],
				snap.Counters[obs.MHedgeLaunched],
				snap.Counters[obs.MHedgeWins],
				snap.Counters[obs.MPoolExhausted])
			fmt.Fprintf(opts.out,
				"decision cache: hits %d  misses %d  bypass %d  invalidations %d  entries %.0f\n\n",
				snap.Counters[obs.MDecisionCacheHits],
				snap.Counters[obs.MDecisionCacheMisses],
				snap.Counters[obs.MDecisionCacheBypass],
				snap.Counters[obs.MDecisionCacheInvalidations],
				snap.Gauges[obs.MDecisionCacheEntries])
		}
	}
	all, err := loadTraces(opts)
	if err != nil {
		return err
	}
	type agg struct {
		name  string
		count int
		total time.Duration
		max   time.Duration
	}
	byName := make(map[string]*agg)
	for _, t := range all {
		for _, s := range t.Spans {
			key := s.Name
			if s.Origin != "" {
				key = s.Name + " [" + s.Origin + "]"
			}
			a, ok := byName[key]
			if !ok {
				a = &agg{name: key}
				byName[key] = a
			}
			cost := s.Cost()
			a.count++
			a.total += cost
			if cost > a.max {
				a.max = cost
			}
		}
	}
	if len(byName) == 0 {
		fmt.Fprintln(opts.out, "no spans")
		return nil
	}
	rows := make([]*agg, 0, len(byName))
	for _, a := range byName {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	if *n > 0 && len(rows) > *n {
		rows = rows[:*n]
	}
	fmt.Fprintf(opts.out, "%-32s %8s %12s %12s %12s\n", "span", "count", "total", "mean", "max")
	for _, a := range rows {
		mean := a.total / time.Duration(a.count)
		fmt.Fprintf(opts.out, "%-32s %8d %12v %12v %12v\n",
			a.name, a.count,
			a.total.Round(time.Microsecond),
			mean.Round(time.Microsecond),
			a.max.Round(time.Microsecond))
	}
	return nil
}

func accuracy(opts options) error {
	if opts.debug == "" {
		return errors.New("accuracy needs -debug ADDR")
	}
	var stats []obs.AccuracyStat
	if err := fetchJSON(opts.debug, "/debug/accuracy", &stats); err != nil {
		return err
	}
	if len(stats) == 0 {
		fmt.Fprintln(opts.out, "no accuracy data")
		return nil
	}
	fmt.Fprintf(opts.out, "%-32s %-12s %10s %8s\n", "operation", "resource", "relerr", "samples")
	for _, s := range stats {
		fmt.Fprintf(opts.out, "%-32s %-12s %10.3f %8d\n",
			s.Operation, s.Resource, s.MeanRelativeError, s.Samples)
	}
	return nil
}

func timeseries(opts options, args []string) error {
	if opts.debug == "" {
		return errors.New("timeseries needs -debug ADDR")
	}
	fs := flag.NewFlagSet("timeseries", flag.ContinueOnError)
	series := fs.String("series", "", "print this series' points instead of the summary")
	n := fs.Int("n", 20, "points per series to fetch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := fmt.Sprintf("/debug/timeseries?n=%d", *n)
	if *series != "" {
		path += "&series=" + *series
	}
	var data map[string][]obs.TimeSeriesPoint
	if err := fetchJSON(opts.debug, path, &data); err != nil {
		return err
	}
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	sort.Strings(names)
	if *series != "" {
		for _, name := range names {
			for _, p := range data[name] {
				fmt.Fprintf(opts.out, "%s seq=%d %s %g\n",
					name, p.Seq, p.When.Format(time.RFC3339Nano), p.Value)
			}
		}
		return nil
	}
	if len(names) == 0 {
		fmt.Fprintln(opts.out, "no series")
		return nil
	}
	fmt.Fprintf(opts.out, "%-36s %8s %14s\n", "series", "points", "latest")
	for _, name := range names {
		pts := data[name]
		latest := "-"
		if len(pts) > 0 {
			latest = fmt.Sprintf("%g", pts[len(pts)-1].Value)
		}
		fmt.Fprintf(opts.out, "%-36s %8d %14s\n", name, len(pts), latest)
	}
	return nil
}

// fetchJSON GETs path from the debug endpoint (host:port or full URL) and
// decodes the JSON body.
func fetchJSON(base, path string, v any) error {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + path
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
