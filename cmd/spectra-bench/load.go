// Load harness: spectra-bench -load measures end-to-end operation
// throughput through the full live stack — decision path, connection
// pool, RPC, usage feedback — against an in-process spectrad-equivalent
// server. It exists to quantify the concurrency of the client→server
// path: with -pool 1 it reproduces the old single-connection
// serialization, with -pool N it demonstrates genuinely overlapping
// remote operations.
//
// Output is a single JSON object (stdout, plus -out FILE); with
// -history FILE the same object is appended as one compact line, making
// BENCH_load.json an append-only trajectory of runs. Every entry embeds
// the full run configuration plus a flat configKey so tooling (and the CI
// gate) compares only like-configured runs:
//
//	{
//	  "config": {"durationSec": 2, "concurrency": 64, "poolSize": 2, ...,
//	             "transport": "mux"},
//	  "configKey": "d2-c64-p2-s64-r0-w10-mhz1000-ac8-q64-b0-h0-dl-tmux",
//	  "ops": 812, "attempted": 815, "errors": 0, "shed": 0, "deadline": 3,
//	  "opsPerSec": 406.0, "goodputFraction": 0.996,
//	  "latencyMs": {"p50": 38.9, "p95": 41.2, "p99": 44.0,
//	                "mean": 39.3, "max": 51.7},
//	  "tailRatio": 1.13
//	}
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spectra"

	spectrarpc "spectra/internal/rpc"
)

// loadConfig parameterizes one throughput run.
type loadConfig struct {
	// Duration is the measured window (after warm-up).
	Duration time.Duration
	// Concurrency is the number of closed-loop worker goroutines.
	Concurrency int
	// PoolSize caps multiplexed connections per server.
	PoolSize int
	// StreamsPerConn caps concurrent streams per connection; 1 reproduces
	// the old serial-per-connection baseline.
	StreamsPerConn int
	// Rate switches to open-loop arrivals at this many ops/sec; 0 keeps
	// the closed loop. Arrivals finding every worker busy are shed.
	Rate float64
	// WorkMc is the per-operation server CPU demand in megacycles; at the
	// server's ServerMHz model this sets the service time.
	WorkMc float64
	// ServerMHz is the in-process server's modeled clock.
	ServerMHz float64
	// MaxConcurrent/MaxQueue apply server admission control when
	// MaxConcurrent > 0; overload sheds are counted, not errored.
	MaxConcurrent int
	MaxQueue      int
	// Budget pins the per-operation latency budget (floor and ceiling); 0
	// derives it from predicted latency as usual.
	Budget time.Duration
	// HedgeDelay overrides the adaptive hedge delay; 0 keeps it adaptive.
	HedgeDelay time.Duration
	// NoDeadline disables the deadline/hedging machinery entirely, for
	// before/after tail comparisons.
	NoDeadline bool
	// Out writes the JSON result to this file as well as stdout.
	Out string
	// History appends the result as one compact JSON line to this file,
	// building the append-only BENCH_load.json trajectory.
	History string
}

// runConfig records every knob that shaped a run. History entries are
// only meaningful next to like-configured entries: a 16-worker unlimited
// run and a 64-worker admission-controlled run measure different systems.
type runConfig struct {
	DurationSec    float64 `json:"durationSec"`
	Concurrency    int     `json:"concurrency"`
	PoolSize       int     `json:"poolSize"`
	StreamsPerConn int     `json:"streamsPerConn"`
	Rate           float64 `json:"rate"`
	WorkMc         float64 `json:"workMc"`
	ServerMHz      float64 `json:"serverMHz"`
	MaxConcurrent  int     `json:"maxConcurrent"`
	MaxQueue       int     `json:"maxQueue"`
	BudgetMs       int64   `json:"budgetMs"`
	HedgeDelayMs   int64   `json:"hedgeDelayMs"`
	NoDeadline     bool    `json:"noDeadline"`
	// Transport names the RPC concurrency model: "serial" (pre-mux, one
	// exchange per connection at a time) or "mux" (stream multiplexing).
	Transport string `json:"transport"`
}

// key flattens the config into one grep-able token so the CI gate can
// select like-configured history lines with a plain string match.
func (c runConfig) key() string {
	dl := "dl"
	if c.NoDeadline {
		dl = "nodl"
	}
	return fmt.Sprintf("d%g-c%d-p%d-s%d-r%g-w%g-mhz%g-ac%d-q%d-b%d-h%d-%s-t%s",
		c.DurationSec, c.Concurrency, c.PoolSize, c.StreamsPerConn, c.Rate,
		c.WorkMc, c.ServerMHz, c.MaxConcurrent, c.MaxQueue,
		c.BudgetMs, c.HedgeDelayMs, dl, c.Transport)
}

// loadResult is the harness's JSON output.
type loadResult struct {
	Config    runConfig `json:"config"`
	ConfigKey string    `json:"configKey"`
	Ops       int64     `json:"ops"`
	// Attempted counts every operation the workers issued: completions
	// plus errors, overload sheds, and deadline expiries. Goodput is
	// meaningless without it — a harness that sheds 90% of its offered
	// load can still post a healthy opsPerSec.
	Attempted int64   `json:"attempted"`
	Errors    int64   `json:"errors"`
	Shed      int64   `json:"shed"`
	Deadline  int64   `json:"deadline"`
	OpsPerSec float64 `json:"opsPerSec"`
	// GoodputFraction is Ops/Attempted: the fraction of offered load that
	// completed successfully. The CI gate holds it above 0.8.
	GoodputFraction float64      `json:"goodputFraction"`
	Latency         latencyStats `json:"latencyMs"`
	// TailRatio is p99/p50, the metric the deadline/hedging machinery
	// exists to bound; the CI tail check reports it.
	TailRatio float64 `json:"tailRatio"`
}

type latencyStats struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// runLoad stands up an in-process server, drives it with concurrent
// operations through a live client for cfg.Duration, and reports
// throughput and latency percentiles.
func runLoad(cfg loadConfig) (loadResult, error) {
	// Record resolved pool geometry, not the 0 "use default" markers: if a
	// later change moves the defaults, the old history lines must keep
	// describing the configuration they actually ran.
	poolSize := cfg.PoolSize
	if poolSize <= 0 {
		poolSize = spectrarpc.DefaultPoolSize
	}
	streams := cfg.StreamsPerConn
	if streams <= 0 {
		streams = spectrarpc.DefaultStreamsPerConn
	}
	conf := runConfig{
		DurationSec:    cfg.Duration.Seconds(),
		Concurrency:    cfg.Concurrency,
		PoolSize:       poolSize,
		StreamsPerConn: streams,
		Rate:           cfg.Rate,
		WorkMc:         cfg.WorkMc,
		ServerMHz:      cfg.ServerMHz,
		MaxConcurrent:  cfg.MaxConcurrent,
		MaxQueue:       cfg.MaxQueue,
		BudgetMs:       cfg.Budget.Milliseconds(),
		HedgeDelayMs:   cfg.HedgeDelay.Milliseconds(),
		NoDeadline:     cfg.NoDeadline,
		Transport:      "mux",
	}
	if cfg.StreamsPerConn == 1 {
		conf.Transport = "serial"
	}
	res := loadResult{Config: conf, ConfigKey: conf.key()}

	machine := spectra.NewMachine(spectra.MachineConfig{
		Name:        "bench-server",
		SpeedMHz:    cfg.ServerMHz,
		OnWallPower: true,
	})
	node := spectra.NewNode(machine, nil, nil)
	srv := spectra.NewServer("bench-server", node, spectra.RealClock{})
	srv.Register("bench.work", func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: cfg.WorkMc})
		return []byte("done"), nil
	})
	if cfg.MaxConcurrent > 0 {
		srv.SetLimits(spectra.ServerLimits{
			MaxConcurrent: cfg.MaxConcurrent,
			MaxQueue:      cfg.MaxQueue,
		})
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer srv.Close()

	setup, err := spectra.NewLiveSetup(spectra.LiveOptions{
		Servers:        map[string]string{"bench": addr},
		PoolSize:       cfg.PoolSize,
		StreamsPerConn: cfg.StreamsPerConn,
		Deadline: spectra.DeadlineOptions{
			Floor:      cfg.Budget,
			Ceiling:    cfg.Budget,
			HedgeDelay: cfg.HedgeDelay,
			Disabled:   cfg.NoDeadline,
		},
	})
	if err != nil {
		return res, err
	}
	defer setup.Runtime.Close()

	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "bench.load",
		Service: "bench.work",
		Plans:   []spectra.PlanSpec{{Name: "remote", UsesServer: true}},
	})
	if err != nil {
		return res, err
	}
	setup.Client.PollServers()
	setup.Client.Probe()

	runOnce := func() error {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			return err
		}
		if _, err := octx.DoRemoteOp("run", []byte("x")); err != nil {
			octx.Abort()
			return err
		}
		_, err = octx.End()
		return err
	}

	// Warm up: train the predictors and fill the connection pool so the
	// measured window sees steady state, not dial and cold-model costs.
	// Transient faults here (a listener still settling, a first-dial race)
	// retry a bounded number of times instead of killing the whole run;
	// anything persistent or non-transient still aborts.
	const warmRetries = 3
	warm := cfg.Concurrency
	if warm < 4 {
		warm = 4
	}
	for i := 0; i < warm; i++ {
		var err error
		for attempt := 0; ; attempt++ {
			if err = runOnce(); err == nil {
				break
			}
			if attempt >= warmRetries || !spectrarpc.IsTransient(err) {
				return res, fmt.Errorf("warm-up op %d (after %d attempts): %w", i, attempt+1, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	var (
		ops, errs, shed, expired atomic.Int64
		latMu                    sync.Mutex
		latencies                []time.Duration
	)
	record := func(d time.Duration, err error) {
		switch {
		case err == nil:
			ops.Add(1)
			latMu.Lock()
			latencies = append(latencies, d)
			latMu.Unlock()
		case spectrarpc.IsDeadline(err):
			expired.Add(1)
		case spectrarpc.IsOverloaded(err):
			shed.Add(1)
		default:
			errs.Add(1)
		}
	}

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup

	// Open loop: a dispatcher paces arrivals; an arrival that finds no
	// free worker is shed client-side (the queue would otherwise hide the
	// server's true capacity).
	var arrivals chan struct{}
	if cfg.Rate > 0 {
		arrivals = make(chan struct{}, cfg.Concurrency)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(arrivals)
			tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				select {
				case arrivals <- struct{}{}:
				default:
					shed.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if arrivals != nil {
				for range arrivals {
					t0 := time.Now()
					err := runOnce()
					record(time.Since(t0), err)
				}
				return
			}
			for time.Now().Before(deadline) {
				t0 := time.Now()
				err := runOnce()
				record(time.Since(t0), err)
				if err != nil && time.Since(t0) < time.Millisecond {
					// An instantly failing operation (every server
					// quarantined, say) must not spin the closed loop
					// into millions of junk errors.
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.Ops = ops.Load()
	res.Errors = errs.Load()
	res.Shed = shed.Load()
	res.Deadline = expired.Load()
	res.Attempted = res.Ops + res.Errors + res.Shed + res.Deadline
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	if res.Attempted > 0 {
		res.GoodputFraction = math.Round(float64(res.Ops)/float64(res.Attempted)*1000) / 1000
	}
	res.Latency = summarize(latencies)
	if res.Latency.P50 > 0 {
		res.TailRatio = math.Round(res.Latency.P99/res.Latency.P50*100) / 100
	}
	return res, nil
}

// summarize computes latency percentiles in milliseconds.
func summarize(lats []time.Duration) latencyStats {
	if len(lats) == 0 {
		return latencyStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 {
		return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	return latencyStats{
		P50:  ms(pct(0.50)),
		P95:  ms(pct(0.95)),
		P99:  ms(pct(0.99)),
		Mean: ms(sum / time.Duration(len(lats))),
		Max:  ms(lats[len(lats)-1]),
	}
}

// emitLoad writes the result as JSON to stdout and, if requested, to a
// file, and appends a compact line to the append-only history (the
// BENCH_load.json trajectory: one JSON object per line, oldest first, so
// the tail behavior of every PR stays comparable).
func emitLoad(res loadResult, out, history string) error {
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := os.Stdout.Write(buf); err != nil {
		return err
	}
	if out != "" {
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			return err
		}
	}
	if history != "" {
		line, err := json.Marshal(res)
		if err != nil {
			return err
		}
		f, err := os.OpenFile(history, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
