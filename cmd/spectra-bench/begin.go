// Begin-path harness: spectra-bench -begin measures the placement-decision
// hot path on the trained speech workload, with and without the decision
// cache, and reports the warm-hit speedup. CI publishes the JSON as the
// BENCH_begin artifact so the ratio is tracked run over run.
//
// Output shape:
//
//	{
//	  "iterations": 5000,
//	  "solverNsPerOp": 39000, "warmNsPerOp": 1600, "speedup": 24.4,
//	  "cache": {"Hits": 4999, "Misses": 1, ...}
//	}
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"spectra"
	"spectra/internal/apps/janus"
	"spectra/internal/solver"
	"spectra/internal/testbed"
)

// beginResult is one -begin run: the solver-path and warm-path per-Begin
// cost and their ratio.
type beginResult struct {
	Iterations    int                `json:"iterations"`
	SolverNsPerOp float64            `json:"solverNsPerOp"`
	WarmNsPerOp   float64            `json:"warmNsPerOp"`
	Speedup       float64            `json:"speedup"`
	Cache         spectra.CacheStats `json:"cache"`
}

// runBegin measures iters Begin/Abort cycles on the solver path (cache
// off) and the warm path (cache on, snapshot TTL held open so the virtual
// clock never expires it) and returns the comparison.
func runBegin(iters int) (beginResult, error) {
	if iters <= 0 {
		iters = 5000
	}
	solverNs, _, err := measureBegin(iters, testbed.Options{})
	if err != nil {
		return beginResult{}, err
	}
	warmNs, stats, err := measureBegin(iters, testbed.Options{
		Cache:       spectra.CacheOptions{Enabled: true},
		SnapshotTTL: time.Hour,
	})
	if err != nil {
		return beginResult{}, err
	}
	res := beginResult{
		Iterations:    iters,
		SolverNsPerOp: solverNs,
		WarmNsPerOp:   warmNs,
		Cache:         stats,
	}
	if warmNs > 0 {
		res.Speedup = solverNs / warmNs
	}
	return res, nil
}

// measureBegin builds the speech testbed with the given options, trains
// the janus operation over every alternative, and times iters Begin/Abort
// cycles.
func measureBegin(iters int, opts testbed.Options) (nsPerOp float64, stats spectra.CacheStats, err error) {
	tb, err := testbed.NewSpeech(opts)
	if err != nil {
		return 0, stats, err
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		return 0, stats, err
	}
	tb.Setup.Refresh()
	alts := []solver.Alternative{
		{Plan: janus.PlanLocal, Fidelity: map[string]string{janus.FidelityDim: janus.VocabFull}},
		{Server: "t20", Plan: janus.PlanHybrid, Fidelity: map[string]string{janus.FidelityDim: janus.VocabFull}},
		{Server: "t20", Plan: janus.PlanRemote, Fidelity: map[string]string{janus.FidelityDim: janus.VocabFull}},
	}
	for i := 0; i < 3; i++ {
		for _, alt := range alts {
			if _, err := app.RecognizeForced(alt, 2); err != nil {
				return 0, stats, err
			}
		}
	}
	params := map[string]float64{janus.ParamLength: 2}
	client := tb.Setup.Client
	// One unmeasured pass warms the caches (first Begin with the cache on
	// is the solve that fills the entry).
	octx, err := client.BeginFidelityOp(app.Operation(), params, "")
	if err != nil {
		return 0, stats, err
	}
	octx.Abort()
	start := time.Now()
	for i := 0; i < iters; i++ {
		octx, err := client.BeginFidelityOp(app.Operation(), params, "")
		if err != nil {
			return 0, stats, err
		}
		octx.Abort()
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(iters), client.DecisionCacheStats(), nil
}

// emitBegin prints the result (indented, stdout) and optionally writes it
// to out.
func emitBegin(res beginResult, out string) error {
	pretty, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(pretty))
	if out != "" {
		if err := os.WriteFile(out, append(pretty, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", out, err)
		}
	}
	return nil
}
