// Command spectra-bench regenerates the paper's evaluation (§4): every
// figure of "Balancing Performance, Energy, and Quality in Pervasive
// Computing" reproduced on the simulated testbeds.
//
// Usage:
//
//	spectra-bench             # all figures
//	spectra-bench -fig 3      # one figure (3-10)
//	spectra-bench -exhaustive # use the exhaustive solver instead of the
//	                          # heuristic (oracle decision quality)
//
// It also hosts the live throughput harness (see load.go):
//
//	spectra-bench -load                       # 16 workers, multiplexed
//	spectra-bench -load -streams 1            # serial-per-connection baseline
//	spectra-bench -load -rate 200 -out BENCH_latest.json
//	spectra-bench -load -history BENCH_load.json   # append to the trajectory
//	spectra-bench -load -no-deadline          # tail without hedging/budgets
//
// And the Begin hot-path harness (see begin.go):
//
//	spectra-bench -begin -out BENCH_begin.json   # warm vs solver-path Begin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spectra/internal/scenario"
	"spectra/internal/testbed"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (3-10); 0 runs all")
	exhaustive := flag.Bool("exhaustive", false, "replace the heuristic solver with exhaustive search")
	load := flag.Bool("load", false, "run the live throughput harness instead of the figures")
	begin := flag.Bool("begin", false, "run the Begin hot-path harness (decision cache warm vs solver path)")
	beginIters := flag.Int("begin-iters", 5000, "begin: measured Begin/Abort iterations per path")
	duration := flag.Duration("duration", 2*time.Second, "load: measured window")
	concurrency := flag.Int("concurrency", 16, "load: concurrent client operations")
	pool := flag.Int("pool", 0, "load: multiplexed connections per server (0 = default)")
	streams := flag.Int("streams", 0, "load: concurrent streams per connection (0 = default, 1 = serialized baseline)")
	rate := flag.Float64("rate", 0, "load: open-loop arrival rate in ops/sec (0 = closed loop)")
	workMc := flag.Float64("work-mc", 10, "load: per-op server demand in megacycles")
	serverMHz := flag.Float64("server-mhz", 1000, "load: in-process server clock model")
	maxConc := flag.Int("max-concurrent", 0, "load: server admission limit (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "load: server queue bound before shedding")
	budget := flag.Duration("budget", 0, "load: pin the per-op latency budget (0 = derive from prediction)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "load: fixed hedge delay (0 = adaptive p95)")
	noDeadline := flag.Bool("no-deadline", false, "load: disable deadlines and hedging for comparison")
	out := flag.String("out", "", "load: also write the JSON result to this file")
	history := flag.String("history", "", "load: append one compact JSON line to this file")
	flag.Parse()

	if *begin {
		res, err := runBegin(*beginIters)
		if err == nil {
			err = emitBegin(res, *out)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "spectra-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *load {
		res, err := runLoad(loadConfig{
			Duration:       *duration,
			Concurrency:    *concurrency,
			PoolSize:       *pool,
			StreamsPerConn: *streams,
			Rate:           *rate,
			WorkMc:         *workMc,
			ServerMHz:      *serverMHz,
			MaxConcurrent:  *maxConc,
			MaxQueue:       *maxQueue,
			Budget:         *budget,
			HedgeDelay:     *hedgeDelay,
			NoDeadline:     *noDeadline,
		})
		if err == nil {
			err = emitLoad(res, *out, *history)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "spectra-bench:", err)
			os.Exit(1)
		}
		return
	}

	opts := testbed.Options{Exhaustive: *exhaustive}
	if err := run(*fig, opts); err != nil {
		fmt.Fprintln(os.Stderr, "spectra-bench:", err)
		os.Exit(1)
	}
}

func run(fig int, opts testbed.Options) error {
	wantSpeech := fig == 0 || fig == 3 || fig == 4
	wantLatex := fig == 0 || (fig >= 5 && fig <= 7)
	wantPangloss := fig == 0 || fig == 8 || fig == 9
	wantOverhead := fig == 0 || fig == 10
	if !wantSpeech && !wantLatex && !wantPangloss && !wantOverhead {
		return fmt.Errorf("unknown figure %d (want 3-10)", fig)
	}

	if wantSpeech {
		results, err := scenario.RunSpeech(opts)
		if err != nil {
			return err
		}
		if fig == 0 || fig == 3 {
			fmt.Println(scenario.FormatTimeTable("Figure 3 — speech recognition", results))
		}
		if fig == 0 || fig == 4 {
			fmt.Println(scenario.FormatEnergyTable("Figure 4 — speech recognition", results))
		}
	}

	if wantLatex {
		results, err := scenario.RunLatex(opts)
		if err != nil {
			return err
		}
		for _, lr := range results {
			figure := 5
			if lr.Document.Pages > 100 {
				figure = 6
			}
			if fig == 0 || fig == figure {
				title := fmt.Sprintf("Figure %d — Latex %s (%d pages)",
					figure, lr.Document.Name, int(lr.Document.Pages))
				fmt.Println(scenario.FormatTimeTable(title, lr.Results))
			}
			if fig == 0 || fig == 7 {
				title := fmt.Sprintf("Figure 7 — Latex %s", lr.Document.Name)
				fmt.Println(scenario.FormatEnergyTable(title, lr.Results))
			}
		}
	}

	if wantPangloss {
		results, err := scenario.RunPangloss(opts)
		if err != nil {
			return err
		}
		fmt.Println(scenario.FormatPangloss(results))
	}

	if wantOverhead {
		results, err := scenario.RunOverhead(opts)
		if err != nil {
			return err
		}
		fmt.Println(scenario.FormatOverhead(results))
	}
	return nil
}
