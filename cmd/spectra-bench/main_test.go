package main

import (
	"testing"
	"time"

	"spectra/internal/testbed"
)

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run(99, testbed.Options{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunOverheadFigure(t *testing.T) {
	if err := run(10, testbed.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpeechFigure(t *testing.T) {
	if err := run(3, testbed.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLatexFigure(t *testing.T) {
	if err := run(5, testbed.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPanglossFigureExhaustive(t *testing.T) {
	if err := run(8, testbed.Options{Exhaustive: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLoadSmoke(t *testing.T) {
	res, err := runLoad(loadConfig{
		Duration:    200 * time.Millisecond,
		Concurrency: 4,
		PoolSize:    2,
		WorkMc:      5,
		ServerMHz:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("load run completed zero operations")
	}
	if res.Errors != 0 {
		t.Fatalf("load run hit %d errors", res.Errors)
	}
	if res.Latency.P50 <= 0 || res.Latency.Max < res.Latency.P99 {
		t.Fatalf("implausible latency stats: %+v", res.Latency)
	}
	if res.OpsPerSec <= 0 {
		t.Fatalf("ops/sec not computed: %+v", res)
	}
}

func TestRunLoadOpenLoop(t *testing.T) {
	res, err := runLoad(loadConfig{
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
		PoolSize:    2,
		Rate:        100,
		WorkMc:      5,
		ServerMHz:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("open-loop run completed zero operations")
	}
}
