package main

import (
	"testing"

	"spectra/internal/testbed"
)

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run(99, testbed.Options{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunOverheadFigure(t *testing.T) {
	if err := run(10, testbed.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpeechFigure(t *testing.T) {
	if err := run(3, testbed.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLatexFigure(t *testing.T) {
	if err := run(5, testbed.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPanglossFigureExhaustive(t *testing.T) {
	if err := run(8, testbed.Options{Exhaustive: true}); err != nil {
		t.Fatal(err)
	}
}
