// Command spectrad runs a Spectra remote-execution server: it hosts
// services, executes them in metered contexts, reports per-RPC resource
// usage, and publishes resource snapshots that clients poll for their
// remote proxy monitors.
//
// Besides the built-in echo service (used by client probes), spectrad
// hosts "spectra.work", a benchmark service whose requests encode a CPU
// demand — useful for exercising a live deployment with spectractl or the
// daemon example.
//
// Usage:
//
//	spectrad -addr :7009 -name serverB -mhz 933
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"spectra"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7009", "TCP address to listen on")
		name = flag.String("name", "spectrad", "server name published in status snapshots")
		mhz  = flag.Float64("mhz", 1000, "modeled CPU clock in MHz (paces spectra.work)")
	)
	flag.Parse()

	if err := run(*addr, *name, *mhz); err != nil {
		fmt.Fprintln(os.Stderr, "spectrad:", err)
		os.Exit(1)
	}
}

func run(addr, name string, mhz float64) error {
	machine := spectra.NewMachine(spectra.MachineConfig{
		Name:        name,
		SpeedMHz:    mhz,
		OnWallPower: true,
	})
	node := spectra.NewNode(machine, nil, nil)
	srv := spectra.NewServer(name, node, spectra.RealClock{})
	srv.Register("spectra.work", workService)

	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("spectrad %q listening on %s (%.0f MHz model)\n", name, bound, mhz)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("spectrad: shutting down")
	return srv.Close()
}

// workService burns the megacycles encoded in the request's first eight
// bytes (big endian); a ninth byte of 1 marks the demand as floating-point.
func workService(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("spectra.work: payload needs 8-byte megacycle header")
	}
	mc := float64(binary.BigEndian.Uint64(payload))
	demand := spectra.ComputeDemand{IntegerMegacycles: mc}
	if len(payload) > 8 && payload[8] == 1 {
		demand = spectra.ComputeDemand{FloatMegacycles: mc}
	}
	ctx.Compute(demand)
	return []byte("done"), nil
}
