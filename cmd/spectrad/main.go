// Command spectrad runs a Spectra remote-execution server: it hosts
// services, executes them concurrently in metered contexts (requests
// multiplex as independent streams over each client connection, and a
// cancelled stream stops its work mid-handler), reports per-RPC resource
// usage, and publishes resource snapshots that clients poll for their
// remote proxy monitors.
//
// Besides the built-in echo service (used by client probes), spectrad
// hosts "spectra.work", a benchmark service whose requests encode a CPU
// demand — useful for exercising a live deployment with spectractl or the
// daemon example.
//
// The daemon is observable: every handled request is counted, timed, and
// recorded as a trace with queue/exec/respond spans; resource telemetry is
// sampled into a bounded time-series history; and an optional flight
// recorder appends each trace as a JSON line with size-based rotation.
// SIGTERM/SIGINT shut down gracefully: the RPC listener drains, the debug
// listener closes, and the flight recorder is flushed before exit.
//
// Usage:
//
//	spectrad -addr :7009 -name serverB -mhz 933
//	spectrad -addr :7009 -debug 127.0.0.1:6060 -flight /var/tmp/spectrad.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spectra"
	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7009", "TCP address to listen on")
		name      = flag.String("name", "spectrad", "server name published in status snapshots")
		mhz       = flag.Float64("mhz", 1000, "modeled CPU clock in MHz (paces spectra.work)")
		debugAddr = flag.String("debug", "", "serve /debug endpoints on this address (empty = off)")
		flight    = flag.String("flight", "", "flight recorder: append traces to this JSONL file (empty = off)")
		flightMB  = flag.Int64("flight-max-mb", 8, "rotate the flight recorder at this size")
		sample    = flag.Duration("telemetry", time.Second, "resource telemetry sampling interval (0 = off)")
		maxConc   = flag.Int("max-concurrent", 0, "admission control: max requests executing at once (0 = unlimited)")
		maxQueue  = flag.Int("max-queue", 0, "admission control: max requests waiting for a worker before shedding")
		shedExp   = flag.Bool("shed-expired", true, "shed requests whose propagated deadline already expired instead of executing them")
	)
	flag.Parse()

	limits := spectra.ServerLimits{MaxConcurrent: *maxConc, MaxQueue: *maxQueue}
	if err := run(*addr, *name, *mhz, *debugAddr, *flight, *flightMB, *sample, limits, *shedExp); err != nil {
		fmt.Fprintln(os.Stderr, "spectrad:", err)
		os.Exit(1)
	}
}

func run(addr, name string, mhz float64, debugAddr, flight string, flightMB int64, sample time.Duration, limits spectra.ServerLimits, shedExpired bool) error {
	machine := spectra.NewMachine(spectra.MachineConfig{
		Name:        name,
		SpeedMHz:    mhz,
		OnWallPower: true,
	})
	node := spectra.NewNode(machine, nil, nil)
	srv := spectra.NewServer(name, node, spectra.RealClock{})
	srv.Register("spectra.work", workService)
	if limits.MaxConcurrent > 0 {
		srv.SetLimits(limits)
	}
	srv.SetShedExpired(shedExpired)

	// Observability: request metrics, retained traces for /debug/traces,
	// an optional JSONL flight recorder, and a resource time-series.
	o := spectra.NewObserver()
	mem := spectra.NewMemoryTraceSink(256)
	mem.AttachMetrics(o.Registry)
	var recorder *obs.JSONLSink
	if flight != "" {
		var err error
		recorder, err = obs.NewJSONLSink(flight, obs.JSONLSinkOptions{MaxBytes: flightMB << 20})
		if err != nil {
			return err
		}
		recorder.AttachMetrics(o.Registry)
	}
	if recorder != nil {
		o.Sink = obs.MultiSink(mem, recorder)
	} else {
		o.Sink = mem
	}
	o.TimeSeries = obs.NewTimeSeriesRecorder(0)
	srv.SetObserver(o)

	stopTelemetry := func() {}
	if sample > 0 {
		stopTelemetry = monitor.StartTelemetry(srv.Monitors(), o.TimeSeries, monitor.TelemetryOptions{
			Interval: sample,
		})
	}

	closeDebug := func() error { return nil }
	if debugAddr != "" {
		bound, stop, err := o.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		closeDebug = stop
		fmt.Printf("spectrad %q debug endpoint on http://%s/debug/metrics\n", name, bound)
	}

	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("spectrad %q listening on %s (%.0f MHz model)\n", name, bound, mhz)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("spectrad: shutting down")
	return shutdown(srv, recorder, stopTelemetry, closeDebug)
}

// shutdown drains the server and flushes observability state: the RPC
// listener closes first (no new traces), then telemetry and the debug
// listener stop, and finally the flight recorder is flushed and closed so
// every emitted trace reaches disk.
func shutdown(srv *spectra.Server, recorder *obs.JSONLSink, stopTelemetry func(), closeDebug func() error) error {
	err := srv.Close()
	stopTelemetry()
	if derr := closeDebug(); err == nil {
		err = derr
	}
	if recorder != nil {
		if ferr := recorder.Close(); err == nil {
			err = ferr
		}
	}
	return err
}

// workService burns the megacycles encoded in the request (see
// wire.WorkRequest): eight big-endian bytes of megacycles plus a
// floating-point flag byte.
func workService(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
	req, err := wire.DecodeWorkRequest(payload)
	if err != nil {
		return nil, fmt.Errorf("spectra.work: %w", err)
	}
	mc := float64(req.Megacycles)
	demand := spectra.ComputeDemand{IntegerMegacycles: mc}
	if req.FloatingPoint {
		demand = spectra.ComputeDemand{FloatMegacycles: mc}
	}
	ctx.Compute(demand)
	return []byte("done"), nil
}
