package main

import (
	"encoding/binary"
	"testing"

	"spectra"
	"spectra/internal/rpc"
)

func TestWorkServicePayloads(t *testing.T) {
	machine := spectra.NewMachine(spectra.MachineConfig{
		Name: "m", SpeedMHz: 100_000, OnWallPower: true,
	})
	node := spectra.NewNode(machine, nil, nil)
	ctx := newCtx(node)

	// Integer work.
	payload := make([]byte, 9)
	binary.BigEndian.PutUint64(payload, 50)
	out, err := workService(ctx, "run", payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "done" {
		t.Fatalf("out = %q", out)
	}
	if got := ctx.Usage().Megacycles; got != 50 {
		t.Fatalf("megacycles = %v, want 50", got)
	}

	// Floating-point work: the FP flag routes through the penalty path.
	fp := make([]byte, 9)
	binary.BigEndian.PutUint64(fp, 10)
	fp[8] = 1
	if _, err := workService(newCtx(node), "run", fp); err != nil {
		t.Fatal(err)
	}

	// Short payloads are rejected.
	if _, err := workService(newCtx(node), "run", []byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func newCtx(node *spectra.Node) *spectra.ServiceContext {
	return spectra.NewServiceContext(spectra.RealClock{}, node, nil)
}

func TestSpectradServesWork(t *testing.T) {
	// Assemble the same server run() builds, on an ephemeral port.
	machine := spectra.NewMachine(spectra.MachineConfig{
		Name: "d", SpeedMHz: 100_000, OnWallPower: true,
	})
	node := spectra.NewNode(machine, nil, nil)
	srv := spectra.NewServer("d", node, spectra.RealClock{})
	srv.Register("spectra.work", workService)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 9)
	binary.BigEndian.PutUint64(payload, 25)
	_, usage, err := c.Call("spectra.work", "run", payload)
	if err != nil {
		t.Fatal(err)
	}
	if usage == nil || usage.CPUMegacycles != 25 {
		t.Fatalf("usage = %+v", usage)
	}
}
