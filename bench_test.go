// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4), plus ablations of the design choices called out in DESIGN.md and
// micro-benchmarks of Spectra's hot paths. Figure benches report the
// headline shape metrics via b.ReportMetric so `go test -bench .` output
// doubles as a compact reproduction record.
package spectra_test

import (
	"testing"
	"time"

	"spectra/internal/apps/janus"
	"spectra/internal/apps/latex"
	"spectra/internal/apps/pangloss"
	"spectra/internal/core"
	"spectra/internal/scenario"
	"spectra/internal/solver"
	"spectra/internal/testbed"
)

// Model-option helpers for the ablation benches.
func modelOpts(disableDataModels bool) core.ModelOptions {
	return core.ModelOptions{DisableDataModels: disableDataModels}
}

func decayOpts(decay float64) core.ModelOptions {
	return core.ModelOptions{Decay: decay}
}

func filePredictOpts(disable bool) core.ModelOptions {
	return core.ModelOptions{DisableFilePrediction: disable}
}

// --- Figures 3 and 4: speech recognition time and energy -----------------

func speechMetrics(b *testing.B, results []scenario.ScenarioResult) (localOverHybrid, hybridOverRemoteEnergy float64) {
	b.Helper()
	for _, r := range results {
		if r.Scenario != scenario.SpeechBaseline {
			continue
		}
		var local, hybrid, remote scenario.Measurement
		for _, bar := range r.Bars {
			switch bar.Label {
			case "local/full":
				local = bar
			case "hybrid/full":
				hybrid = bar
			case "remote/full":
				remote = bar
			}
		}
		localOverHybrid = float64(local.Elapsed) / float64(hybrid.Elapsed)
		hybridOverRemoteEnergy = hybrid.EnergyJoules / remote.EnergyJoules
	}
	return localOverHybrid, hybridOverRemoteEnergy
}

func BenchmarkFig3SpeechTime(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunSpeech(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ratio, _ = speechMetrics(b, results)
	}
	// Paper: local execution takes 3-9x as long as hybrid.
	b.ReportMetric(ratio, "local/hybrid-ratio")
}

func BenchmarkFig4SpeechEnergy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunSpeech(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_, ratio = speechMetrics(b, results)
	}
	// Paper: hybrid consumes more client energy than remote.
	b.ReportMetric(ratio, "hybrid/remote-energy")
}

// --- Figures 5-7: Latex time and energy ----------------------------------

func latexBars(results []scenario.LatexResult, docName, scen, label string) scenario.Measurement {
	for _, lr := range results {
		if lr.Document.Name != docName {
			continue
		}
		for _, r := range lr.Results {
			if r.Scenario != scen {
				continue
			}
			for _, bar := range r.Bars {
				if bar.Label == label {
					return bar
				}
			}
		}
	}
	return scenario.Measurement{}
}

func BenchmarkFig5LatexSmall(b *testing.B) {
	var bOverA float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunLatex(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		base := latexBars(results, "small.tex", scenario.LatexBaseline, "serverB")
		a := latexBars(results, "small.tex", scenario.LatexBaseline, "serverA")
		bOverA = float64(a.Elapsed) / float64(base.Elapsed)
	}
	// Paper: the faster server B wins the baseline.
	b.ReportMetric(bOverA, "serverA/serverB-time")
}

func BenchmarkFig6LatexLarge(b *testing.B) {
	var localOverB float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunLatex(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		local := latexBars(results, "large.tex", scenario.LatexBaseline, "local")
		srvB := latexBars(results, "large.tex", scenario.LatexBaseline, "serverB")
		localOverB = float64(local.Elapsed) / float64(srvB.Elapsed)
	}
	b.ReportMetric(localOverB, "local/serverB-time")
}

func BenchmarkFig7LatexEnergy(b *testing.B) {
	var localOverB float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunLatex(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		local := latexBars(results, "small.tex", scenario.LatexEnergy, "local")
		srvB := latexBars(results, "small.tex", scenario.LatexEnergy, "serverB")
		localOverB = local.EnergyJoules / srvB.EnergyJoules
	}
	// Paper: server B uses slightly less energy than local execution.
	b.ReportMetric(localOverB, "local/serverB-energy")
}

// --- Figures 8 and 9: Pangloss-Lite decision quality ----------------------

func BenchmarkFig8PanglossAccuracy(b *testing.B) {
	var meanPct float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunPangloss(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for _, r := range results {
			for _, s := range r.Sentences {
				sum += s.Percentile
				n++
			}
		}
		meanPct = sum / float64(n)
	}
	b.ReportMetric(meanPct, "mean-percentile")
}

func BenchmarkFig9PanglossUtility(b *testing.B) {
	var meanRel float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunPangloss(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range results {
			sum += r.MeanRelativeUtility()
		}
		meanRel = sum / float64(len(results))
	}
	// Paper: Spectra achieves on average 91% of the best utility.
	b.ReportMetric(meanRel, "relative-utility")
}

// --- Figure 10: decision overhead ----------------------------------------

func BenchmarkFig10Overhead(b *testing.B) {
	var fiveServersMs, fullCacheMs float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunOverhead(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			ms := float64(r.Total.Microseconds()) / 1000
			if r.FullCache {
				fullCacheMs = ms
			} else if r.Servers == 5 {
				fiveServersMs = ms
			}
		}
	}
	b.ReportMetric(fiveServersMs, "ms/op-5servers")
	b.ReportMetric(fullCacheMs, "ms/op-fullcache")
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// trainedPanglossDecision builds a trained Pangloss testbed and returns a
// function performing one placement decision, used by the solver ablation.
func trainedPanglossDecision(b *testing.B, opts testbed.Options) func() (int, float64) {
	b.Helper()
	tb, err := testbed.NewLaptop(opts)
	if err != nil {
		b.Fatal(err)
	}
	app, err := pangloss.Install(tb.Setup)
	if err != nil {
		b.Fatal(err)
	}
	tb.Setup.Refresh()
	alts := pangloss.AllAlternatives(tb.Setup.Client.Servers())
	for _, words := range []float64{4, 10, 20, 34} {
		for _, alt := range alts {
			if _, err := app.TranslateForced(alt, words); err != nil {
				b.Fatal(err)
			}
		}
	}
	op := app.Operation()
	return func() (int, float64) {
		octx, err := tb.Setup.Client.BeginFidelityOp(op,
			map[string]float64{pangloss.ParamWords: 12}, "")
		if err != nil {
			b.Fatal(err)
		}
		d := octx.Decision()
		octx.Abort()
		return d.Evaluations, d.Utility
	}
}

// BenchmarkAblationSolverHeuristic measures the heuristic solver's decision
// latency and evaluation count over the ~100-alternative Pangloss space.
func BenchmarkAblationSolverHeuristic(b *testing.B) {
	decide := trainedPanglossDecision(b, testbed.Options{})
	b.ResetTimer()
	var evals int
	var util float64
	for i := 0; i < b.N; i++ {
		evals, util = decide()
	}
	b.ReportMetric(float64(evals), "evaluations")
	b.ReportMetric(util, "utility")
}

// BenchmarkAblationSolverExhaustive is the oracle counterpart.
func BenchmarkAblationSolverExhaustive(b *testing.B) {
	decide := trainedPanglossDecision(b, testbed.Options{Exhaustive: true})
	b.ResetTimer()
	var evals int
	var util float64
	for i := 0; i < b.N; i++ {
		evals, util = decide()
	}
	b.ReportMetric(float64(evals), "evaluations")
	b.ReportMetric(util, "utility")
}

// BenchmarkAblationNoParams disables input-parameter regression: Pangloss
// decision quality degrades because predicted execution time no longer
// tracks sentence length (the paper's Figure 8 baseline discussion).
func BenchmarkAblationNoParams(b *testing.B) {
	benchPanglossQuality(b, testbed.Options{
		Models: core.ModelOptions{DisableParams: true},
	})
}

// BenchmarkAblationWithParams is the control for NoParams.
func BenchmarkAblationWithParams(b *testing.B) {
	benchPanglossQuality(b, testbed.Options{})
}

func benchPanglossQuality(b *testing.B, opts testbed.Options) {
	var meanRel float64
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunPangloss(opts)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range results {
			sum += r.MeanRelativeUtility()
		}
		meanRel = sum / float64(len(results))
	}
	b.ReportMetric(meanRel, "relative-utility")
}

// BenchmarkAblationNoDataModels disables per-document models: the large
// Latex document wrongly inherits the small document's file-access profile
// and pays reintegration it does not need.
func BenchmarkAblationNoDataModels(b *testing.B) {
	var bytes float64
	for i := 0; i < b.N; i++ {
		bytes = latexLargeReintegration(b, true)
	}
	b.ReportMetric(bytes, "reint-bytes/op")
}

// BenchmarkAblationWithDataModels is the control for NoDataModels.
func BenchmarkAblationWithDataModels(b *testing.B) {
	var bytes float64
	for i := 0; i < b.N; i++ {
		bytes = latexLargeReintegration(b, false)
	}
	b.ReportMetric(bytes, "reint-bytes/op")
}

// latexLargeReintegration trains Latex, dirties the small document's input,
// and reports how many bytes a large-document compile reintegrated.
func latexLargeReintegration(b *testing.B, disableDataModels bool) float64 {
	b.Helper()
	tb, err := testbed.NewLaptop(testbed.Options{
		Models: modelOpts(disableDataModels),
	})
	if err != nil {
		b.Fatal(err)
	}
	app, err := latex.Install(tb.Setup)
	if err != nil {
		b.Fatal(err)
	}
	tb.Setup.Refresh()
	small, large := latex.SmallDocument(), latex.LargeDocument()
	for i := 0; i < 3; i++ {
		for _, d := range []latex.Document{small, large} {
			for _, alt := range []solver.Alternative{
				{Plan: latex.PlanLocal},
				{Server: "serverB", Plan: latex.PlanRemote},
			} {
				if _, err := app.CompileForced(alt, d); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	if _, err := tb.Setup.Env.Host().Coda().ReintegrateAll(); err != nil {
		b.Fatal(err)
	}
	if err := app.TouchInput(small); err != nil {
		b.Fatal(err)
	}
	rep, err := app.CompileForced(solver.Alternative{Server: "serverB", Plan: latex.PlanRemote}, large)
	if err != nil {
		b.Fatal(err)
	}
	return float64(rep.Decision.ReintegratedBytes)
}

// BenchmarkAblationNoDecay disables recency weighting: after a behaviour
// change the stale model keeps mispredicting. The metric is the relative
// prediction error for the changed workload.
func BenchmarkAblationNoDecay(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		errPct = speechChangeError(b, 1.0) // decay 1 = no recency weighting
	}
	b.ReportMetric(errPct, "latency-error-%")
}

// BenchmarkAblationWithDecay is the control for NoDecay.
func BenchmarkAblationWithDecay(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		errPct = speechChangeError(b, 0) // 0 selects the default decay
	}
	b.ReportMetric(errPct, "latency-error-%")
}

// speechChangeError trains Janus, then doubles utterance complexity by
// switching to longer phrases, and reports how far the predicted latency of
// the hybrid plan is from the measured one.
func speechChangeError(b *testing.B, decay float64) float64 {
	b.Helper()
	tb, err := testbed.NewSpeech(testbed.Options{
		Models: decayOpts(decay),
	})
	if err != nil {
		b.Fatal(err)
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		b.Fatal(err)
	}
	tb.Setup.Refresh()
	alt := solver.Alternative{
		Server:   "t20",
		Plan:     janus.PlanHybrid,
		Fidelity: map[string]string{janus.FidelityDim: janus.VocabFull},
	}
	// Old regime: short phrases. The length parameter is deliberately NOT
	// informative here (every phrase identical), so adapting to the new
	// regime relies purely on recency weighting.
	for i := 0; i < 20; i++ {
		if _, err := app.RecognizeForced(alt, 1.0); err != nil {
			b.Fatal(err)
		}
	}
	// New regime: same reported parameter, heavier real work (e.g. a new
	// acoustic model): run longer phrases but report length 1.0.
	var measured time.Duration
	for i := 0; i < 10; i++ {
		octx, err := tb.Setup.Client.BeginForced(app.Operation(), alt,
			map[string]float64{janus.ParamLength: 1.0}, "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := octx.DoLocalOp("frontend", make([]byte, 48_000)); err != nil {
			b.Fatal(err)
		}
		if _, err := octx.DoRemoteOp("search.full", make([]byte, 6_000)); err != nil {
			b.Fatal(err)
		}
		rep, err := octx.End()
		if err != nil {
			b.Fatal(err)
		}
		measured = rep.Elapsed
	}
	octx, err := tb.Setup.Client.BeginForced(app.Operation(), alt,
		map[string]float64{janus.ParamLength: 1.0}, "")
	if err != nil {
		b.Fatal(err)
	}
	predicted := octx.Decision().Predicted.Latency
	octx.Abort()
	diff := predicted.Seconds() - measured.Seconds()
	if diff < 0 {
		diff = -diff
	}
	return 100 * diff / measured.Seconds()
}

// --- Extensions -----------------------------------------------------------

// BenchmarkExtensionParallelPangloss measures the paper's future-work
// parallel execution plans (§4.3): the translation engines overlap on
// different servers instead of running sequentially.
func BenchmarkExtensionParallelPangloss(b *testing.B) {
	tb, err := testbed.NewLaptop(testbed.Options{})
	if err != nil {
		b.Fatal(err)
	}
	app, err := pangloss.Install(tb.Setup)
	if err != nil {
		b.Fatal(err)
	}
	tb.Setup.Refresh()
	full := map[string]string{"ebmt": "on", "glossary": "on", "dict": "on"}
	const words = 30

	var improvement float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq, err := app.TranslateForced(solver.Alternative{
			Server:   "serverB",
			Plan:     "e=r,g=r,d=r,m=l",
			Fidelity: full,
		}, words)
		if err != nil {
			b.Fatal(err)
		}
		par, err := app.TranslateParallel(words, full, "serverB", map[string]string{
			pangloss.EngineEBMT:     "serverB",
			pangloss.EngineGlossary: "serverA",
			pangloss.EngineDict:     "serverB",
		})
		if err != nil {
			b.Fatal(err)
		}
		improvement = 100 * float64(seq.Elapsed-par.Elapsed) / float64(seq.Elapsed)
	}
	b.ReportMetric(improvement, "speedup-%")
}

// BenchmarkAblationNoFilePredict disables selective file-access prediction:
// every known file counts as likely-accessed, so the large document pays
// reintegration for the small document's edits.
func BenchmarkAblationNoFilePredict(b *testing.B) {
	var bytes float64
	for i := 0; i < b.N; i++ {
		tb, err := testbed.NewLaptop(testbed.Options{
			Models: filePredictOpts(true),
		})
		if err != nil {
			b.Fatal(err)
		}
		app, err := latex.Install(tb.Setup)
		if err != nil {
			b.Fatal(err)
		}
		tb.Setup.Refresh()
		small, large := latex.SmallDocument(), latex.LargeDocument()
		for j := 0; j < 3; j++ {
			for _, d := range []latex.Document{small, large} {
				if _, err := app.CompileForced(solver.Alternative{Server: "serverB", Plan: latex.PlanRemote}, d); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := app.TouchInput(small); err != nil {
			b.Fatal(err)
		}
		rep, err := app.CompileForced(solver.Alternative{Server: "serverB", Plan: latex.PlanRemote}, large)
		if err != nil {
			b.Fatal(err)
		}
		bytes = float64(rep.Decision.ReintegratedBytes)
	}
	b.ReportMetric(bytes, "reint-bytes/op")
}
